#ifndef WYM_BENCH_BENCH_COMMON_H_
#define WYM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "util/thread_pool.h"

/// \file
/// Shared plumbing for the table/figure harnesses. Environment knobs:
///   WYM_SCALE    — multiplies every dataset's default size (default 1).
///   WYM_DATASETS — comma-separated ids to restrict a run, e.g.
///                  "S-DA,S-FZ" (default: all 12).
///   WYM_THREADS  — sizes the global thread pool used by the batch
///                  prediction/explanation paths (default: all cores).

namespace wym::bench {

/// Fixed seed of the reproduction runs.
inline constexpr uint64_t kSeed = 42;

/// WYM_SCALE (default 1.0, clamped to [0.05, 10]).
double ScaleFromEnv();

/// The benchmark specs selected by WYM_DATASETS (all when unset).
std::vector<data::DatasetSpec> SelectedSpecs();

/// Generates a dataset and its 60-20-20 split.
struct PreparedData {
  data::Dataset dataset;
  data::Split split;
};
PreparedData Prepare(const data::DatasetSpec& spec, double scale,
                     uint64_t seed = kSeed);

/// Trains a WymModel with `config` on the prepared split.
core::WymModel TrainWym(const PreparedData& data,
                        const core::WymConfig& config = {});

/// Test-set F1 of any matcher (via the virtual PredictDataset, which is
/// the parallel batch path for WymModel).
double TestF1(const core::Matcher& matcher, const data::Split& split);

/// Test-set F1 of a WymModel explicitly through PredictProbaBatch on
/// `pool` (nullptr = the global WYM_THREADS pool).
double TestF1(const core::WymModel& model, const data::Split& split,
              util::ThreadPool* pool);

/// Explanation throughput (records/second) of ExplainBatch over `sample`
/// on `pool` (nullptr = the global pool).
double ExplainRecPerSec(const core::WymModel& model,
                        const data::Dataset& sample, util::ThreadPool* pool);

/// Takes the first `limit` records of a dataset (or all).
data::Dataset Head(const data::Dataset& dataset, size_t limit);

/// Balanced sample: up to `per_class` matches and `per_class` non-matches.
data::Dataset BalancedSample(const data::Dataset& dataset, size_t per_class);

/// Prints the standard harness banner (paper reference + scale note).
void PrintBanner(const std::string& what);

/// Machine-readable perf report: the `--json[=PATH]` emitter shared by
/// every harness (wym-bench-report/v1 schema, validated by
/// obs::ValidateBenchReportJson and `wym_cli validate-report`).
///
/// Usage: `PerfReport report = PerfReport::FromArgs("micro", &argc,
/// argv);` strips the flag from argv (so google-benchmark or a plain
/// harness never sees it), then AddStage/AddRate/AddBenchmark while
/// running and Write() at the end. Write() embeds a snapshot of the
/// whole obs metrics registry (counters, gauges, histogram p50/p95),
/// which is how stage-level timings and the quarantine/corruption
/// counters reach the BENCH_*.json trajectory.
class PerfReport {
 public:
  /// A report that was not requested; requested() is false and Write()
  /// is a no-op success.
  explicit PerfReport(std::string bench_name);

  /// Parses and removes `--json` / `--json=PATH` from argv. A bare
  /// `--json` defaults to BENCH_<bench_name>.json in the working
  /// directory.
  static PerfReport FromArgs(std::string bench_name, int* argc, char** argv);

  bool requested() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Named wall-clock stage duration (seconds).
  void AddStage(const std::string& name, double seconds);
  /// Named throughput (records/second etc.).
  void AddRate(const std::string& name, double per_sec);
  /// One google-benchmark result (per-iteration real time, ns).
  void AddBenchmark(const std::string& name, double time_ns,
                    uint64_t iterations);

  /// Writes the JSON file (no-op success when not requested). Returns
  /// false after printing the failure to stderr.
  bool Write() const;

 private:
  struct Entry {
    std::string name;
    double value;
  };
  struct BenchEntry {
    std::string name;
    double time_ns;
    uint64_t iterations;
  };

  std::string bench_name_;
  std::string path_;
  std::vector<Entry> stages_;
  std::vector<Entry> rates_;
  std::vector<BenchEntry> benchmarks_;
};

}  // namespace wym::bench

#endif  // WYM_BENCH_BENCH_COMMON_H_
