// Regenerates Table 4: component ablation. Columns:
//   WYM        — full pipeline (siamese encoder, neural scorer, full
//                feature engineering);
//   Decision Unit Generator: j-w dist. (Jaro-Winkler pairing),
//                BERT-pt (pre-trained encoder), BERT-ft (fine-tuned);
//   Scorer:    bin. scr. (binary relevance), cos. sim. (cosine),
//                bin j-w (binary scorer on Jaro-Winkler units);
//   Matcher:   smp. feat. (simplified 6-feature matcher).
// Expected shape: full WYM and BERT-ft best on average; binary-on-
// Jaro-Winkler worst.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

struct AblationConfig {
  const char* name;
  wym::core::WymConfig config;
};

std::vector<AblationConfig> BuildConfigs() {
  using wym::core::PairingSimilarity;
  using wym::core::ScorerKind;
  using wym::embedding::EncoderMode;

  std::vector<AblationConfig> configs;
  {
    configs.push_back({"WYM", {}});
  }
  {
    wym::core::WymConfig c;
    c.generator.similarity = PairingSimilarity::kJaroWinkler;
    configs.push_back({"j-w dist.", c});
  }
  {
    wym::core::WymConfig c;
    c.encoder.mode = EncoderMode::kPretrained;
    configs.push_back({"BERT-pt", c});
  }
  {
    wym::core::WymConfig c;
    c.encoder.mode = EncoderMode::kFineTuned;
    configs.push_back({"BERT-ft", c});
  }
  {
    wym::core::WymConfig c;
    c.scorer.kind = ScorerKind::kBinary;
    configs.push_back({"bin. scr.", c});
  }
  {
    wym::core::WymConfig c;
    c.scorer.kind = ScorerKind::kCosine;
    configs.push_back({"cos. sim.", c});
  }
  {
    wym::core::WymConfig c;
    c.generator.similarity = PairingSimilarity::kJaroWinkler;
    c.scorer.kind = ScorerKind::kBinary;
    configs.push_back({"bin j-w", c});
  }
  {
    wym::core::WymConfig c;
    c.simplified_features = true;
    configs.push_back({"smp. feat.", c});
  }
  return configs;
}

}  // namespace

int main() {
  using namespace wym;
  bench::PrintBanner("Table 4: component ablation (F1)");
  const double scale = bench::ScaleFromEnv();
  const std::vector<AblationConfig> configs = BuildConfigs();

  std::vector<std::string> headers = {"Dataset"};
  for (const auto& c : configs) headers.push_back(c.name);
  TablePrinter table(headers);

  std::vector<std::vector<double>> columns(configs.size());
  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);
    std::vector<std::string> row = {spec.id};
    for (size_t c = 0; c < configs.size(); ++c) {
      const core::WymModel model = bench::TrainWym(data, configs[c].config);
      const double f1 = bench::TestF1(model, data.split);
      row.push_back(strings::FormatDouble(f1, 3));
      columns[c].push_back(f1);
    }
    table.AddRow(row);
    std::printf("  [done] %s\n", spec.id.c_str());
  }

  std::vector<std::string> avg = {"AVG"};
  for (const auto& column : columns) {
    avg.push_back(strings::FormatDouble(stats::Mean(column), 3));
  }
  table.AddRow(avg);
  std::printf("\n");
  table.Print();
  return 0;
}
