// Regenerates Figure 6: conciseness of the explanations — the Pareto
// cumulative |impact| captured by the top fraction of decision units.
// Paper reading: ~3% of the units carry 18-40% of the impact, 20% carry
// 50-83%.

#include <cstdio>

#include "bench_common.h"
#include "explain/evaluation.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Figure 6: conciseness (cumulative impact share)");
  const double scale = bench::ScaleFromEnv();

  const std::vector<double> fractions = {0.03, 0.05, 0.1, 0.2,
                                         0.3,  0.5,  1.0};
  std::vector<std::string> headers = {"Dataset"};
  for (double f : fractions) {
    headers.push_back("top " + strings::FormatDouble(100.0 * f, 0) + "%");
  }
  TablePrinter table(headers);

  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);
    const core::WymModel model = bench::TrainWym(data);

    std::vector<core::Explanation> explanations;
    const data::Dataset sample = bench::Head(data.split.test, 150);
    explanations.reserve(sample.size());
    for (const auto& record : sample.records) {
      explanations.push_back(model.Explain(record));
    }
    const std::vector<double> curve =
        explain::AverageConcisenessCurve(explanations, fractions);
    table.AddRow(spec.id, curve, 3);
    std::printf("  [done] %s\n", spec.id.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
