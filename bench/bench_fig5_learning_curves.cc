// Regenerates Figure 5: learning curves — WYM's test F1 as the training
// set grows. The paper uses 500 / 1K / 2K / full with the pre-trained
// encoder and excludes the four small datasets (S-BR, S-IA, S-FZ, D-IA);
// our scaled datasets sweep proportional sizes. Expected shape: flat
// curves except on the hard datasets (S-AG, S-WA, T-AB), which improve
// with more data.

#include <cstdio>

#include "bench_common.h"
#include "ml/metrics.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Figure 5: learning curves (pre-trained encoder)");
  const double scale = bench::ScaleFromEnv();

  const std::vector<size_t> sizes = {100, 250, 500, 0};  // 0 = full.
  std::vector<std::string> headers = {"Dataset"};
  for (size_t size : sizes) {
    headers.push_back(size == 0 ? "full" : std::to_string(size));
  }
  TablePrinter table(headers);

  for (const auto& spec : bench::SelectedSpecs()) {
    // The paper skips datasets whose training split is too small for the
    // sweep to be meaningful.
    if (spec.id == "S-BR" || spec.id == "S-IA" || spec.id == "S-FZ" ||
        spec.id == "D-IA") {
      continue;
    }
    const bench::PreparedData data = bench::Prepare(spec, scale);

    std::vector<std::string> row = {spec.id};
    for (size_t size : sizes) {
      data::Dataset train = data.split.train;
      if (size != 0 && size < train.size()) {
        train = bench::Head(train, size);
      }
      core::WymConfig config;
      config.encoder.mode = embedding::EncoderMode::kPretrained;
      core::WymModel model(config);
      model.Fit(train, data.split.validation);
      const double f1 = ml::F1Score(data.split.test.Labels(),
                                    model.PredictDataset(data.split.test));
      row.push_back(strings::FormatDouble(f1, 3));
    }
    table.AddRow(row);
    std::printf("  [done] %s\n", spec.id.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
