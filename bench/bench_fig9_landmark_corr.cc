// Regenerates Figure 9: the Pearson correlation between WYM's unit
// impacts and Landmark Explanation's token attributions (merged to unit
// granularity), on a balanced record sample per dataset, split by
// matching vs non-matching records. Expected shape: moderate positive
// correlation on matches (paper average 0.577), weaker on non-matches
// (0.348).

#include <cstdio>

#include "bench_common.h"
#include "explain/evaluation.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Figure 9: correlation with Landmark explanations");
  const double scale = bench::ScaleFromEnv();
  constexpr size_t kPerClass = 25;  // Paper: 100-record balanced samples.

  explain::LandmarkOptions landmark_options;
  landmark_options.num_samples = 60;
  const explain::LandmarkExplainer landmark(landmark_options);

  TablePrinter table({"Dataset", "match mean", "match median",
                      "non-match mean", "non-match median"});
  std::vector<double> match_means, non_match_means;

  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);
    const core::WymModel model = bench::TrainWym(data);

    // Split the balanced sample by label for the two distributions.
    const data::Dataset sample =
        bench::BalancedSample(data.split.test, kPerClass);
    std::vector<size_t> match_idx, non_match_idx;
    for (size_t i = 0; i < sample.size(); ++i) {
      (sample.records[i].label == 1 ? match_idx : non_match_idx).push_back(i);
    }
    const data::Dataset matches = data::Subset(sample, match_idx, "/m");
    const data::Dataset non_matches =
        data::Subset(sample, non_match_idx, "/n");

    const std::vector<double> corr_match =
        explain::UnitLandmarkCorrelations(model, landmark, matches);
    const std::vector<double> corr_non_match =
        explain::UnitLandmarkCorrelations(model, landmark, non_matches);

    table.AddRow(spec.id,
                 {stats::Mean(corr_match), stats::Median(corr_match),
                  stats::Mean(corr_non_match),
                  stats::Median(corr_non_match)},
                 3);
    match_means.push_back(stats::Mean(corr_match));
    non_match_means.push_back(stats::Mean(corr_non_match));
    std::printf("  [done] %s\n", spec.id.c_str());
  }
  table.AddRow({"AVG", strings::FormatDouble(stats::Mean(match_means), 3),
                "-", strings::FormatDouble(stats::Mean(non_match_means), 3),
                "-"});
  std::printf("\n");
  table.Print();
  std::printf(
      "\n(Compare the AVG means with the paper's 0.577 match / 0.348\n"
      "non-match Pearson averages.)\n");
  return 0;
}
