// Regenerates Figure 7: sufficiency via post-hoc accuracy (Eq. 4) for
// the top v = 1..5 explanation elements, comparing four settings:
//   WYM (intrinsic impacts), WYM + LIME, DITTO + LIME, and
//   DITTO + Landmark at single-token granularity (the LEMON row).
// Expected shape: WYM-as-explainer dominates the post-hoc explainers.
//
// Post-hoc explainers re-query the model per perturbation, so this bench
// evaluates a record sample per dataset (WYM_SCALE shrinks further).

#include <cstdio>

#include "baselines/ditto.h"
#include "bench_common.h"
#include "explain/evaluation.h"
#include "explain/lime.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Figure 7: sufficiency (post-hoc accuracy, Eq. 4)");
  const double scale = bench::ScaleFromEnv();
  constexpr size_t kSampleRecords = 30;
  constexpr size_t kMaxV = 5;

  explain::LimeOptions lime_options;
  lime_options.num_samples = 50;
  const explain::LimeExplainer lime(lime_options);
  explain::LandmarkOptions landmark_options;
  landmark_options.num_samples = 50;
  const explain::LandmarkExplainer landmark(landmark_options);

  std::vector<std::string> headers = {"Dataset", "Explainer"};
  for (size_t v = 1; v <= kMaxV; ++v) {
    headers.push_back("v=" + std::to_string(v));
  }
  TablePrinter table(headers);

  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);
    const data::Dataset sample =
        bench::BalancedSample(data.split.test, kSampleRecords / 2);

    const core::WymModel wym_model = bench::TrainWym(data);
    baselines::DittoMatcher ditto;
    ditto.Fit(data.split.train, data.split.validation);

    auto add_row = [&](const char* name,
                       const std::function<double(size_t)>& accuracy_at) {
      std::vector<std::string> row = {spec.id, name};
      for (size_t v = 1; v <= kMaxV; ++v) {
        row.push_back(strings::FormatDouble(accuracy_at(v), 3));
      }
      table.AddRow(row);
    };

    add_row("WYM", [&](size_t v) {
      return explain::PostHocAccuracyWym(wym_model, sample, v);
    });
    add_row("WYM+LIME", [&](size_t v) {
      return explain::PostHocAccuracyTokens(
          wym_model, sample,
          [&](const data::EmRecord& r) { return lime.Explain(wym_model, r); },
          v);
    });
    add_row("DITTO+LIME", [&](size_t v) {
      return explain::PostHocAccuracyTokens(
          ditto, sample,
          [&](const data::EmRecord& r) { return lime.Explain(ditto, r); },
          v);
    });
    add_row("DITTO+LEMON(tok)", [&](size_t v) {
      return explain::PostHocAccuracyTokens(
          ditto, sample,
          [&](const data::EmRecord& r) {
            return landmark.Explain(ditto, r);
          },
          v);
    });
    std::printf("  [done] %s\n", spec.id.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
