// Candidate-generation throughput harness: two synthetic raw tables
// (corrupted views of one product catalog) streamed through the
// blocking tier, against an embedded copy of the seed exhaustive-probe
// TokenBlocker as the baseline.
//
// Reported quantities:
//   * blocking recall (fraction of true duplicate pairs surviving into
//     the candidate set) for the baseline, the optimized token stage,
//     and the full stream (token + exact-duplicate short-circuit +
//     embedding LSH);
//   * candidates/second for each of the above, and the token-stage
//     speedup over the seed baseline (the >= 10x acceptance bar).
//
// The baseline is exhaustive per left row, so it runs on a capped left
// subsample (WYM_BLOCK_BASELINE_ROWS, default 1000) and its rate
// extrapolates; the optimized paths run the same subsample (for the
// apples-to-apples speedup and an exact candidate-list equality check)
// and then the full table.
//
// Environment knobs:
//   WYM_BLOCK_ROWS          — rows per table (default 2000).
//   WYM_BLOCK_BASELINE_ROWS — left rows for the exhaustive baseline.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "blocking/blocker.h"
#include "blocking/candidate_stream.h"
#include "data/catalog.h"
#include "data/corruption.h"
#include "embedding/semantic_encoder.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace wym;

size_t EnvRows(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::set<std::string> SeedRowTokens(const data::Entity& row,
                                    const text::Tokenizer& tokenizer) {
  std::set<std::string> tokens;
  for (const auto& value : row.values) {
    for (auto& token : tokenizer.Tokenize(value)) {
      tokens.insert(std::move(token));
    }
  }
  return tokens;
}

/// The seed TokenBlocker's index structures, built in its idiom
/// (std::set token rows, map-of-vectors postings).
struct SeedIndex {
  std::vector<std::set<std::string>> right_tokens;
  std::map<std::string, std::vector<size_t>> postings;
};

SeedIndex BuildSeedIndex(const blocking::EntityTable& right,
                         const text::Tokenizer& tokenizer) {
  SeedIndex index;
  index.right_tokens.resize(right.size());
  for (size_t r = 0; r < right.size(); ++r) {
    index.right_tokens[r] = SeedRowTokens(right.rows[r], tokenizer);
    for (const auto& token : index.right_tokens[r]) {
      index.postings[token].push_back(r);
    }
  }
  return index;
}

/// The seed TokenBlocker's probe loop, verbatim in structure:
/// exhaustive posting walks, per-pair set intersections. This is the
/// comparison point the speedup is measured against.
std::vector<blocking::CandidatePair> SeedTokenProbe(
    const blocking::EntityTable& left, const blocking::EntityTable& right,
    const SeedIndex& seed, const blocking::TokenBlockerOptions& options) {
  const text::Tokenizer tokenizer;
  const auto& right_tokens = seed.right_tokens;
  const auto& index = seed.postings;
  const size_t stop_count = static_cast<size_t>(
      options.max_token_frequency * static_cast<double>(right.size()));

  std::vector<blocking::CandidatePair> out;
  for (size_t l = 0; l < left.size(); ++l) {
    const std::set<std::string> tokens = SeedRowTokens(left.rows[l], tokenizer);
    std::map<size_t, size_t> shared_counts;
    for (const auto& token : tokens) {
      auto it = index.find(token);
      if (it == index.end()) continue;
      if (stop_count > 0 && it->second.size() > stop_count) continue;
      for (size_t r : it->second) ++shared_counts[r];
    }
    std::vector<blocking::CandidatePair> row_candidates;
    for (const auto& [r, shared] : shared_counts) {
      if (shared < options.min_shared_tokens) continue;
      size_t full_shared = 0;
      for (const auto& token : tokens) {
        full_shared += right_tokens[r].count(token);
      }
      const size_t unioned =
          tokens.size() + right_tokens[r].size() - full_shared;
      const double jaccard = unioned == 0 ? 0.0
                                          : static_cast<double>(full_shared) /
                                                static_cast<double>(unioned);
      if (jaccard < options.min_jaccard) continue;
      row_candidates.push_back({l, r, jaccard});
    }
    std::sort(row_candidates.begin(), row_candidates.end(),
              [](const blocking::CandidatePair& a,
                 const blocking::CandidatePair& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.right_row < b.right_row;
              });
    if (options.max_candidates_per_row > 0 &&
        row_candidates.size() > options.max_candidates_per_row) {
      row_candidates.resize(options.max_candidates_per_row);
    }
    out.insert(out.end(), row_candidates.begin(), row_candidates.end());
  }
  return out;
}

blocking::EntityTable HeadRows(const blocking::EntityTable& table,
                               size_t limit) {
  blocking::EntityTable out;
  out.schema = table.schema;
  out.rows.assign(table.rows.begin(),
                  table.rows.begin() +
                      static_cast<long>(std::min(limit, table.size())));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PerfReport report =
      bench::PerfReport::FromArgs("blocking", &argc, argv);
  bench::PrintBanner("Blocking: candidate-generation throughput");

  const size_t rows = EnvRows("WYM_BLOCK_ROWS", 2000);
  const size_t baseline_rows =
      std::min(rows, EnvRows("WYM_BLOCK_BASELINE_ROWS", 1000));
  std::printf("Tables: %zu rows each; exhaustive baseline on %zu left "
              "rows (WYM_BLOCK_ROWS / WYM_BLOCK_BASELINE_ROWS).\n\n",
              rows, baseline_rows);

  // Two corrupted views of one catalog; row i <-> row i is the truth.
  Rng rng(bench::kSeed);
  const data::Schema schema = data::DomainSchema(data::Domain::kProduct);
  const auto catalog = data::GenerateCatalog(data::Domain::kProduct, rows, &rng);
  data::CorruptionProfile profile;
  blocking::EntityTable left{schema, {}}, right{schema, {}};
  std::vector<size_t> ids(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    data::Entity base;
    base.values = catalog[i].values;
    left.rows.push_back(data::CorruptEntity(base, schema, profile, &rng));
    right.rows.push_back(data::CorruptEntity(base, schema, profile, &rng));
    ids[i] = i;
  }
  const blocking::EntityTable left_head = HeadRows(left, baseline_rows);
  const std::vector<size_t> ids_head(ids.begin(),
                                     ids.begin() +
                                         static_cast<long>(baseline_rows));

  const blocking::TokenBlockerOptions token_options;
  TablePrinter table({"stage", "left rows", "candidates", "build s",
                      "probe s", "cand/s", "recall"});
  auto add_row = [&](const std::string& stage, size_t n_left,
                     size_t candidates, double build_seconds,
                     double probe_seconds, double recall) {
    // Throughput over the probe phase: the index build is a one-time
    // cost (reported as its own stage) that amortizes over left rows.
    const double rate =
        static_cast<double>(candidates) / std::max(probe_seconds, 1e-9);
    table.AddRow({stage, std::to_string(n_left), std::to_string(candidates),
                  strings::FormatDouble(build_seconds, 3),
                  strings::FormatDouble(probe_seconds, 3),
                  strings::FormatDouble(rate, 0),
                  strings::FormatDouble(recall, 4)});
    report.AddStage(stage + ".build", build_seconds);
    report.AddStage(stage + ".probe", probe_seconds);
    report.AddRate(stage + ".candidates_per_sec", rate);
    report.AddRate(stage + ".recall", recall);
    return rate;
  };

  // Seed baseline: exhaustive probe on the capped subsample.
  const text::Tokenizer tokenizer;
  Stopwatch watch;
  const SeedIndex seed_index = BuildSeedIndex(right, tokenizer);
  const double baseline_build = watch.ElapsedSeconds();
  watch.Reset();
  const auto baseline =
      SeedTokenProbe(left_head, right, seed_index, token_options);
  const double baseline_probe = watch.ElapsedSeconds();
  const double baseline_rate =
      add_row("baseline_token", baseline_rows, baseline.size(),
              baseline_build, baseline_probe,
              blocking::BlockingRecall(baseline, ids_head, ids));

  // Optimized token stage, same subsample: same candidates, faster.
  blocking::CandidateStreamOptions token_stream_options;
  token_stream_options.token = token_options;
  token_stream_options.exact_short_circuit = false;
  blocking::CandidateStream token_stream(left_head, right,
                                         token_stream_options);
  watch.Reset();
  token_stream.Prepare();
  const double token_build = watch.ElapsedSeconds();
  watch.Reset();
  const auto token_head = token_stream.Drain();
  const double token_probe = watch.ElapsedSeconds();
  const double token_rate =
      add_row("token", baseline_rows, token_head.size(), token_build,
              token_probe, blocking::BlockingRecall(token_head, ids_head, ids));
  bool identical = token_head.size() == baseline.size();
  for (size_t i = 0; identical && i < token_head.size(); ++i) {
    identical = token_head[i].left_row == baseline[i].left_row &&
                token_head[i].right_row == baseline[i].right_row &&
                token_head[i].score == baseline[i].score;
  }

  // Full stream on the whole table: token + fingerprint short-circuit +
  // embedding-LSH second stage, chunked.
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});
  blocking::CandidateStreamOptions stream_options;
  stream_options.token = token_options;
  stream_options.encoder = &encoder;
  blocking::CandidateStream stream(left, right, stream_options);
  watch.Reset();
  stream.Prepare();
  const double stream_build = watch.ElapsedSeconds();
  watch.Reset();
  std::vector<blocking::CandidatePair> chunk;
  size_t stream_candidates = 0;
  std::set<std::pair<size_t, size_t>> truth_hits;
  while (stream.Next(&chunk)) {
    stream_candidates += chunk.size();
    for (const auto& c : chunk) {
      if (c.left_row == c.right_row) {
        truth_hits.emplace(c.left_row, c.right_row);
      }
    }
  }
  const double stream_probe = watch.ElapsedSeconds();
  const double stream_recall =
      static_cast<double>(truth_hits.size()) / static_cast<double>(rows);
  add_row("stream_full", rows, stream_candidates, stream_build, stream_probe,
          stream_recall);

  const double speedup = token_rate / std::max(baseline_rate, 1e-9);
  report.AddRate("token.speedup_vs_baseline", speedup);
  std::printf("\n");
  table.Print();
  std::printf(
      "\nToken-stage candidates identical to the seed blocker: %s\n"
      "Token-stage speedup over the seed blocker: %.1fx (target >= 10x)\n"
      "Full-stream recall: %.4f (baseline %.4f on its subsample)\n",
      identical ? "yes" : "NO — INVESTIGATE", speedup, stream_recall,
      blocking::BlockingRecall(baseline, ids_head, ids));
  if (!identical) return 1;
  return report.Write() ? 0 : 1;
}
