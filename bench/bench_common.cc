#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ml/metrics.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace wym::bench {

double ScaleFromEnv() {
  const char* raw = std::getenv("WYM_SCALE");
  if (raw == nullptr) return 1.0;
  const double scale = std::strtod(raw, nullptr);
  return std::clamp(scale, 0.05, 10.0);
}

std::vector<data::DatasetSpec> SelectedSpecs() {
  const char* raw = std::getenv("WYM_DATASETS");
  const auto& all = data::BenchmarkSpecs();
  if (raw == nullptr || *raw == '\0') return all;
  std::vector<data::DatasetSpec> selected;
  for (const auto& id : strings::Split(raw, ',')) {
    const data::DatasetSpec* spec = data::FindSpec(strings::Trim(id));
    if (spec != nullptr) selected.push_back(*spec);
  }
  return selected.empty() ? all : selected;
}

PreparedData Prepare(const data::DatasetSpec& spec, double scale,
                     uint64_t seed) {
  PreparedData out;
  out.dataset = data::GenerateDataset(spec, seed, scale);
  out.split = data::DefaultSplit(out.dataset, seed);
  return out;
}

core::WymModel TrainWym(const PreparedData& data,
                        const core::WymConfig& config) {
  core::WymModel model(config);
  model.Fit(data.split.train, data.split.validation);
  return model;
}

double TestF1(const core::Matcher& matcher, const data::Split& split) {
  return ml::F1Score(split.test.Labels(),
                     matcher.PredictDataset(split.test));
}

double TestF1(const core::WymModel& model, const data::Split& split,
              util::ThreadPool* pool) {
  const std::vector<double> probabilities =
      model.PredictProbaBatch(split.test, pool);
  std::vector<int> predicted(probabilities.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    predicted[i] = probabilities[i] >= 0.5 ? 1 : 0;
  }
  return ml::F1Score(split.test.Labels(), predicted);
}

double ExplainRecPerSec(const core::WymModel& model,
                        const data::Dataset& sample, util::ThreadPool* pool) {
  if (sample.size() == 0) return 0.0;
  Stopwatch watch;
  const std::vector<core::Explanation> explanations =
      model.ExplainBatch(sample, pool);
  const double seconds = watch.ElapsedSeconds();
  return static_cast<double>(explanations.size()) / std::max(seconds, 1e-9);
}

data::Dataset Head(const data::Dataset& dataset, size_t limit) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < std::min(limit, dataset.size()); ++i) {
    indices.push_back(i);
  }
  return data::Subset(dataset, indices, "/head");
}

data::Dataset BalancedSample(const data::Dataset& dataset,
                             size_t per_class) {
  std::vector<size_t> indices;
  size_t matches = 0, non_matches = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.records[i].label == 1 && matches < per_class) {
      indices.push_back(i);
      ++matches;
    } else if (dataset.records[i].label == 0 && non_matches < per_class) {
      indices.push_back(i);
      ++non_matches;
    }
  }
  return data::Subset(dataset, indices, "/balanced");
}

PerfReport::PerfReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

PerfReport PerfReport::FromArgs(std::string bench_name, int* argc,
                                char** argv) {
  PerfReport report(std::move(bench_name));
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      report.path_ = "BENCH_" + report.bench_name_ + ".json";
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0 && arg[7] != '\0') {
      report.path_ = arg + 7;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  argv[kept] = nullptr;
  return report;
}

void PerfReport::AddStage(const std::string& name, double seconds) {
  stages_.push_back({name, seconds});
}

void PerfReport::AddRate(const std::string& name, double per_sec) {
  rates_.push_back({name, per_sec});
}

void PerfReport::AddBenchmark(const std::string& name, double time_ns,
                              uint64_t iterations) {
  benchmarks_.push_back({name, time_ns, iterations});
}

bool PerfReport::Write() const {
  if (!requested()) return true;

  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  };

  std::ostringstream os;
  os << "{\"schema\":\"wym-bench-report/v1\"";
  os << ",\"bench\":\"" << escape(bench_name_) << "\"";
  os << ",\"scale\":" << ScaleFromEnv();
  os << ",\"seed\":" << kSeed;
  os << ",\"benchmarks\":[";
  for (size_t i = 0; i < benchmarks_.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":\"" << escape(benchmarks_[i].name)
       << "\",\"time_ns\":" << benchmarks_[i].time_ns
       << ",\"iterations\":" << benchmarks_[i].iterations << "}";
  }
  os << "],\"stages\":[";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":\"" << escape(stages_[i].name)
       << "\",\"seconds\":" << stages_[i].value << "}";
  }
  os << "],\"rates\":[";
  for (size_t i = 0; i < rates_.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":\"" << escape(rates_[i].name)
       << "\",\"per_sec\":" << rates_[i].value << "}";
  }
  os << "],\"metrics\":"
     << obs::MetricsToJson(obs::Registry::Global().Snapshot());
  os << "}\n";

  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << os.str();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "perf report: cannot write %s\n", path_.c_str());
    return false;
  }
  std::printf("perf report written to %s\n", path_.c_str());
  return true;
}

void PrintBanner(const std::string& what) {
  std::printf(
      "== %s ==\n"
      "(WYM reproduction on the synthetic Magellan benchmark; scale=%.2f,"
      " seed=%llu. Shapes, not absolute values, are the comparison"
      " target -- see EXPERIMENTS.md.)\n\n",
      what.c_str(), ScaleFromEnv(),
      static_cast<unsigned long long>(kSeed));
}

}  // namespace wym::bench
