// Regenerates Table 5: test F1 of every classifier in the explainable
// matcher's pool, per dataset, with per-dataset and per-classifier
// averages and standard deviations. Expected shape: all classifiers
// close (low per-dataset SD); the winner varies by dataset.

#include <cstdio>

#include "bench_common.h"
#include "ml/classifier_pool.h"
#include "ml/metrics.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Table 5: the classifier pool (F1 per model)");
  const double scale = bench::ScaleFromEnv();

  const std::vector<std::string> names = ml::PoolMemberNames();
  std::vector<std::string> headers = {"Dataset"};
  for (const auto& name : names) headers.push_back(name);
  headers.push_back("Avg.");
  headers.push_back("S.D.");
  TablePrinter table(headers);

  std::vector<std::vector<double>> per_classifier(names.size());
  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);
    const core::WymModel model = bench::TrainWym(data);

    // Scored unit sets of the test records, once.
    std::vector<core::ScoredUnitSet> test_sets;
    test_sets.reserve(data.split.test.size());
    for (const auto& record : data.split.test.records) {
      const core::TokenizedRecord tokenized = model.Prepare(record);
      core::ScoredUnitSet set;
      set.units = model.GenerateUnits(tokenized);
      set.scores = model.ScoreUnits(tokenized, set.units);
      test_sets.push_back(std::move(set));
    }
    const std::vector<int> truth = data.split.test.Labels();

    std::vector<double> row_scores;
    const auto& pool = model.matcher().pool();
    for (size_t c = 0; c < pool.size(); ++c) {
      std::vector<int> predicted;
      predicted.reserve(test_sets.size());
      for (const auto& set : test_sets) {
        predicted.push_back(model.matcher().PredictWith(*pool[c], set));
      }
      const double f1 = ml::F1Score(truth, predicted);
      row_scores.push_back(f1);
      per_classifier[c].push_back(f1);
    }
    std::vector<std::string> row = {spec.id};
    for (double f1 : row_scores) {
      row.push_back(strings::FormatDouble(f1, 3));
    }
    row.push_back(strings::FormatDouble(stats::Mean(row_scores), 3));
    row.push_back(strings::FormatDouble(stats::StdDev(row_scores), 3));
    table.AddRow(row);
    std::printf("  [done] %s (selected: %s)\n", spec.id.c_str(),
                model.matcher().best_name().c_str());
  }

  std::vector<std::string> avg = {"Avg."};
  std::vector<std::string> sd = {"S.D."};
  for (const auto& scores : per_classifier) {
    avg.push_back(strings::FormatDouble(stats::Mean(scores), 3));
    sd.push_back(strings::FormatDouble(stats::StdDev(scores), 3));
  }
  avg.push_back("-");
  avg.push_back("-");
  sd.push_back("-");
  sd.push_back("-");
  table.AddRow(avg);
  table.AddRow(sd);
  std::printf("\n");
  table.Print();
  return 0;
}
