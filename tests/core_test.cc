#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/decision_unit.h"
#include "core/explainable_matcher.h"
#include "core/feature_extractor.h"
#include "core/relevance_scorer.h"
#include "core/tokenized_record.h"
#include "core/unit_generator.h"
#include "data/benchmark_gen.h"
#include "embedding/semantic_encoder.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace wym::core {
namespace {

const text::Tokenizer& TestTokenizer() {
  static const text::Tokenizer tokenizer{};
  return tokenizer;
}

embedding::SemanticEncoder MakeEncoder(
    const std::vector<std::vector<std::string>>& corpus) {
  embedding::SemanticEncoderOptions options;
  options.mode = embedding::EncoderMode::kFineTuned;
  options.hash_dim = 24;
  options.cooc_dim = 8;
  options.numeric_dims = 6;
  embedding::SemanticEncoder encoder(options);
  encoder.Fit(corpus);
  return encoder;
}

TokenizedRecord MakeRecord(const data::Schema& schema,
                           std::vector<std::string> left_values,
                           std::vector<std::string> right_values,
                           int label,
                           const embedding::SemanticEncoder& encoder) {
  data::EmRecord record;
  record.left.values = std::move(left_values);
  record.right.values = std::move(right_values);
  record.label = label;
  TokenizedRecord tokenized = TokenizeRecord(record, schema, TestTokenizer());
  EncodeEntity(encoder, &tokenized.left);
  EncodeEntity(encoder, &tokenized.right);
  tokenized.label = label;
  return tokenized;
}

// ---------------------------------------------------------------------
// Decision unit & tokenization basics.
// ---------------------------------------------------------------------

TEST(DecisionUnitTest, Labels) {
  DecisionUnit paired;
  paired.paired = true;
  paired.left.token = "exch";
  paired.right.token = "exch";
  EXPECT_EQ(paired.Label(), "(exch, exch)");

  DecisionUnit unpaired;
  unpaired.paired = false;
  unpaired.unpaired_side = Side::kRight;
  unpaired.right.token = "eng";
  EXPECT_EQ(unpaired.Label(), "(eng)");
}

TEST(DecisionUnitTest, AnchorAttribute) {
  DecisionUnit unit;
  unit.paired = true;
  unit.left.attribute = 2;
  unit.right.attribute = 0;
  EXPECT_EQ(unit.AnchorAttribute(), 2u);
  unit.paired = false;
  unit.unpaired_side = Side::kRight;
  EXPECT_EQ(unit.AnchorAttribute(), 0u);
}

TEST(TokenizedRecordTest, AttributeBookkeeping) {
  const data::Schema schema{{"name", "brand"}};
  data::Entity entity;
  entity.values = {"digital camera", "sony"};
  const TokenizedEntity tokenized =
      TokenizeEntity(entity, schema, TestTokenizer());
  ASSERT_EQ(tokenized.tokens.size(), 3u);
  EXPECT_EQ(tokenized.attribute_of[0], 0u);
  EXPECT_EQ(tokenized.attribute_of[2], 1u);
  EXPECT_EQ(tokenized.TokensOfAttribute(0).size(), 2u);
  EXPECT_EQ(tokenized.TokensOfAttribute(1).size(), 1u);
}

// ---------------------------------------------------------------------
// Algorithm 1: DecisionUnitDiscovery.
// ---------------------------------------------------------------------

class UnitGeneratorTest : public ::testing::Test {
 protected:
  UnitGeneratorTest()
      : schema_{{"name", "brand"}},
        encoder_(MakeEncoder({{"digital", "camera", "sony"},
                              {"digital", "lens", "nikon"}})) {}

  data::Schema schema_;
  embedding::SemanticEncoder encoder_;
};

TEST_F(UnitGeneratorTest, IdenticalDescriptionsFullyPair) {
  const TokenizedRecord record = MakeRecord(
      schema_, {"digital camera", "sony"}, {"digital camera", "sony"}, 1,
      encoder_);
  const DecisionUnitGenerator generator;
  const auto units =
      generator.Generate(record.left, record.right, schema_.size());
  size_t paired = 0;
  for (const auto& unit : units) paired += unit.paired;
  EXPECT_EQ(paired, 3u);
  EXPECT_EQ(units.size(), 3u);  // No unpaired leftovers.
  EXPECT_TRUE(CheckUnitConstraints(units, record.left, record.right));
}

TEST_F(UnitGeneratorTest, DisjointDescriptionsAllUnpaired) {
  const TokenizedRecord record = MakeRecord(
      schema_, {"digital camera", "sony"}, {"wooden table", "ikea"}, 0,
      encoder_);
  UnitGeneratorOptions options;
  options.theta = 0.9;  // Nothing clears a 0.9 bar here.
  options.eta = 0.92;
  options.epsilon = 0.95;
  const DecisionUnitGenerator generator(options);
  const auto units =
      generator.Generate(record.left, record.right, schema_.size());
  for (const auto& unit : units) EXPECT_FALSE(unit.paired);
  EXPECT_EQ(units.size(), 6u);  // 3 left + 3 right tokens, all unpaired.
  EXPECT_TRUE(CheckUnitConstraints(units, record.left, record.right));
}

TEST_F(UnitGeneratorTest, InterAttributePhaseRescuesMisplacedValues) {
  // "sony" sits in the name on the left and in brand on the right:
  // phase 1 cannot pair it, phase 2 must.
  const TokenizedRecord record = MakeRecord(
      schema_, {"camera sony", ""}, {"camera", "sony"}, 1, encoder_);
  const DecisionUnitGenerator generator;
  const auto units =
      generator.Generate(record.left, record.right, schema_.size());
  bool found_inter = false;
  for (const auto& unit : units) {
    if (unit.paired && unit.left.token == "sony") {
      EXPECT_EQ(unit.phase, UnitPhase::kInterAttribute);
      EXPECT_EQ(unit.right.token, "sony");
      found_inter = true;
    }
  }
  EXPECT_TRUE(found_inter);
  EXPECT_TRUE(CheckUnitConstraints(units, record.left, record.right));
}

TEST_F(UnitGeneratorTest, OneToManyPhaseHandlesRepetitions) {
  // Left repeats "camera"; the right has one. The second left "camera"
  // can only pair through phase 3 against the already-paired right token.
  const TokenizedRecord record = MakeRecord(
      schema_, {"camera camera", "sony"}, {"camera", "sony"}, 1, encoder_);
  const DecisionUnitGenerator generator;
  const auto units =
      generator.Generate(record.left, record.right, schema_.size());
  size_t camera_pairs = 0;
  bool saw_one_to_many = false;
  for (const auto& unit : units) {
    if (unit.paired && unit.left.token == "camera") {
      ++camera_pairs;
      saw_one_to_many =
          saw_one_to_many || unit.phase == UnitPhase::kOneToMany;
    }
  }
  EXPECT_EQ(camera_pairs, 2u);
  EXPECT_TRUE(saw_one_to_many);
  EXPECT_TRUE(CheckUnitConstraints(units, record.left, record.right));
}

TEST_F(UnitGeneratorTest, JaroWinklerModeNeedsNoEmbeddings) {
  data::EmRecord raw;
  raw.left.values = {"digital camera", "sony"};
  raw.right.values = {"digitall camera", "sonny"};
  TokenizedRecord record =
      TokenizeRecord(raw, schema_, TestTokenizer());  // No encoding.
  UnitGeneratorOptions options;
  options.similarity = PairingSimilarity::kJaroWinkler;
  const DecisionUnitGenerator generator(options);
  const auto units =
      generator.Generate(record.left, record.right, schema_.size());
  size_t paired = 0;
  for (const auto& unit : units) paired += unit.paired;
  EXPECT_EQ(paired, 3u);  // Typos survive Jaro-Winkler at 0.6.
}

TEST_F(UnitGeneratorTest, RuleVetoesPairs) {
  const TokenizedRecord record = MakeRecord(
      schema_, {"camera dslra200w", "sony"}, {"camera dslra300w", "sony"},
      0, encoder_);
  // Sibling codes sit around cosine ~0.4 in the hash space; drop the
  // thresholds so the spurious pair forms without the rule.
  UnitGeneratorOptions options;
  options.theta = 0.35;
  options.eta = 0.4;
  options.epsilon = 0.45;
  const DecisionUnitGenerator unruled(options);
  options.rules.push_back(EqualProductCodeRule());
  const DecisionUnitGenerator ruled(options);

  auto count_code_pairs = [&](const DecisionUnitGenerator& generator) {
    size_t count = 0;
    for (const auto& unit :
         generator.Generate(record.left, record.right, schema_.size())) {
      if (unit.paired && unit.left.token == "dslra200w") ++count;
    }
    return count;
  };
  EXPECT_GT(count_code_pairs(unruled), 0u);  // Spurious sibling-code pair.
  EXPECT_EQ(count_code_pairs(ruled), 0u);    // Vetoed.
}

TEST_F(UnitGeneratorTest, ConstraintsHoldOnGeneratedBenchmark) {
  // Property sweep: the two §3.1.1 constraints hold on real records.
  const data::Dataset dataset = data::GenerateById("S-IA", 3, 0.2);
  std::vector<std::vector<std::string>> corpus;
  std::vector<TokenizedRecord> records;
  for (const auto& raw : dataset.records) {
    TokenizedRecord record =
        TokenizeRecord(raw, dataset.schema, TestTokenizer());
    corpus.push_back(record.left.tokens);
    corpus.push_back(record.right.tokens);
    records.push_back(std::move(record));
  }
  const embedding::SemanticEncoder encoder = MakeEncoder(corpus);
  const DecisionUnitGenerator generator;
  for (auto& record : records) {
    EncodeEntity(encoder, &record.left);
    EncodeEntity(encoder, &record.right);
    const auto units =
        generator.Generate(record.left, record.right, dataset.schema.size());
    EXPECT_TRUE(CheckUnitConstraints(units, record.left, record.right));
  }
}

// ---------------------------------------------------------------------
// Relevance scorer: Eq. 2 rules, symmetry (R3), cardinality (R5).
// ---------------------------------------------------------------------

TEST(RelevanceScorerTest, Eq2TargetRules) {
  RelevanceScorer scorer;  // alpha = 0.55, beta = 0.45.
  DecisionUnit paired;
  paired.paired = true;

  paired.similarity = 0.9;
  EXPECT_DOUBLE_EQ(scorer.RawTarget(paired, 1), 1.0);   // Consistent match.
  EXPECT_DOUBLE_EQ(scorer.RawTarget(paired, 0), 0.0);   // Neutralized (R1).
  paired.similarity = 0.1;
  EXPECT_DOUBLE_EQ(scorer.RawTarget(paired, 1), 0.0);   // Neutralized (R1).
  EXPECT_DOUBLE_EQ(scorer.RawTarget(paired, 0), -1.0);  // Consistent.

  DecisionUnit unpaired;
  unpaired.paired = false;
  EXPECT_DOUBLE_EQ(scorer.RawTarget(unpaired, 1), 0.0);
  EXPECT_DOUBLE_EQ(scorer.RawTarget(unpaired, 0), -1.0);
}

TEST(RelevanceScorerTest, FeaturesAreSymmetric) {
  const data::Schema schema{{"name"}};
  const auto encoder = MakeEncoder({{"alpha", "beta"}});
  const TokenizedRecord record =
      MakeRecord(schema, {"alpha"}, {"beta"}, 1, encoder);

  DecisionUnit forward;
  forward.paired = true;
  forward.left = {0, 0, "alpha"};
  forward.right = {0, 0, "beta"};

  // Swap the record sides to reverse the unit: features must not change
  // (requirement R3 — mean and |diff| are symmetric).
  TokenizedRecord reversed = record;
  std::swap(reversed.left, reversed.right);
  DecisionUnit backward;
  backward.paired = true;
  backward.left = {0, 0, "beta"};
  backward.right = {0, 0, "alpha"};

  const auto f = RelevanceScorer::UnitFeatures(record, forward);
  const auto g = RelevanceScorer::UnitFeatures(reversed, backward);
  ASSERT_EQ(f.size(), g.size());
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i], g[i], 1e-9);
  }
}

TEST(RelevanceScorerTest, UnpairedUsesZeroEmbedding) {
  const data::Schema schema{{"name"}};
  const auto encoder = MakeEncoder({{"alpha"}});
  const TokenizedRecord record =
      MakeRecord(schema, {"alpha"}, {"alpha"}, 1, encoder);
  DecisionUnit unpaired;
  unpaired.paired = false;
  unpaired.unpaired_side = Side::kLeft;
  unpaired.left = {0, 0, "alpha"};

  const auto features = RelevanceScorer::UnitFeatures(record, unpaired);
  const size_t dim = record.left.embeddings[0].size();
  ASSERT_EQ(features.size(), 2 * dim);
  // mean = v/2 and |diff| = |v| must coincide up to factor 2 (R5).
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(2.0 * features[i],
                std::fabs(features[dim + i]) *
                    (features[i] >= 0 ? 1.0 : -1.0),
                1e-5);
  }
}

TEST(RelevanceScorerTest, NeuralScorerLearnsPairedVsUnpaired) {
  // Train on a corpus where paired units in matches are identical tokens
  // and non-matches carry unpaired tokens; the scorer must score paired
  // units above unpaired ones.
  const data::Schema schema{{"name", "brand"}};
  std::vector<std::vector<std::string>> corpus = {
      {"digital", "camera", "sony"}, {"wireless", "router", "netgear"}};
  const auto encoder = MakeEncoder(corpus);

  std::vector<TokenizedRecord> records;
  std::vector<std::vector<DecisionUnit>> units;
  const DecisionUnitGenerator generator;
  for (int i = 0; i < 30; ++i) {
    records.push_back(MakeRecord(schema, {"digital camera", "sony"},
                                 {"digital camera", "sony"}, 1, encoder));
    records.push_back(MakeRecord(schema, {"digital camera", "sony"},
                                 {"wireless router", "netgear"}, 0,
                                 encoder));
  }
  for (const auto& record : records) {
    units.push_back(
        generator.Generate(record.left, record.right, schema.size()));
  }
  RelevanceScorerOptions options;
  options.mlp.epochs = 30;
  RelevanceScorer scorer(options);
  scorer.Fit(records, units);

  const auto scores = scorer.Score(records[0], units[0]);
  const auto non_match_scores = scorer.Score(records[1], units[1]);
  // Paired identical units in the match score positive...
  for (size_t u = 0; u < units[0].size(); ++u) {
    if (units[0][u].paired) {
      EXPECT_GT(scores[u], 0.0);
    }
  }
  // ...and unpaired units in the non-match score negative.
  for (size_t u = 0; u < units[1].size(); ++u) {
    if (!units[1][u].paired) {
      EXPECT_LT(non_match_scores[u], 0.0);
    }
  }
}

TEST(RelevanceScorerTest, BinaryAndCosineVariants) {
  const data::Schema schema{{"name"}};
  const auto encoder = MakeEncoder({{"a"}});
  const TokenizedRecord record = MakeRecord(schema, {"a"}, {"a"}, 1, encoder);
  std::vector<DecisionUnit> units(2);
  units[0].paired = true;
  units[0].similarity = 0.8;
  units[1].paired = false;

  RelevanceScorerOptions binary;
  binary.kind = ScorerKind::kBinary;
  RelevanceScorer binary_scorer(binary);
  binary_scorer.Fit({}, {});
  EXPECT_EQ(binary_scorer.Score(record, units),
            (std::vector<double>{1.0, -1.0}));

  RelevanceScorerOptions cosine;
  cosine.kind = ScorerKind::kCosine;
  RelevanceScorer cosine_scorer(cosine);
  cosine_scorer.Fit({}, {});
  const auto scores = cosine_scorer.Score(record, units);
  EXPECT_DOUBLE_EQ(scores[0], 0.8);
  EXPECT_LT(scores[1], 0.0);
}

// ---------------------------------------------------------------------
// Feature extractor + inverse transformation.
// ---------------------------------------------------------------------

ScoredUnitSet MakeScoredSet() {
  ScoredUnitSet set;
  auto add = [&](bool paired, size_t attr, double score) {
    DecisionUnit unit;
    unit.paired = paired;
    unit.left.attribute = attr;
    unit.right.attribute = attr;
    if (!paired) unit.unpaired_side = Side::kLeft;
    set.units.push_back(unit);
    set.scores.push_back(score);
  };
  add(true, 0, 0.8);
  add(true, 0, 0.4);
  add(false, 0, -0.9);
  add(true, 1, 0.1);
  add(false, 1, -0.5);
  return set;
}

TEST(FeatureExtractorTest, DimsAndNames) {
  const FeatureExtractor full(2, /*simplified=*/false);
  EXPECT_EQ(full.dim(), full.feature_names().size());
  EXPECT_EQ(full.dim(), 2 * 7 + 4 + 17u);
  const FeatureExtractor simplified(2, /*simplified=*/true);
  EXPECT_EQ(simplified.dim(), 6u);
}

TEST(FeatureExtractorTest, SimplifiedFeatureValues) {
  const FeatureExtractor extractor(2, /*simplified=*/true);
  const auto f = extractor.Extract(MakeScoredSet());
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[0], 5.0);                          // all count.
  EXPECT_NEAR(f[1], (0.8 + 0.4 - 0.9 + 0.1 - 0.5) / 5, 1e-12);  // mean.
  EXPECT_DOUBLE_EQ(f[2], 3.0);                          // pos count.
  EXPECT_NEAR(f[3], (0.8 + 0.4 + 0.1) / 3, 1e-12);
  EXPECT_DOUBLE_EQ(f[4], 2.0);                          // neg count.
  EXPECT_NEAR(f[5], (-0.9 - 0.5) / 2, 1e-12);
}

TEST(FeatureExtractorTest, EmptySetIsAllZero) {
  const FeatureExtractor extractor(2, false);
  const auto f = extractor.Extract({});
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FeatureExtractorTest, AttributionWeightsAreInverse) {
  const FeatureExtractor extractor(2, /*simplified=*/true);
  const ScoredUnitSet set = MakeScoredSet();
  const UnitAttribution attribution = extractor.Attribution(set);
  ASSERT_EQ(attribution.size(), set.size());

  // Every unit participates in all_count (1/5) and all_mean (1/5).
  for (size_t u = 0; u < set.size(); ++u) {
    double count_weight = 0.0, mean_weight = 0.0;
    for (const auto& c : attribution[u]) {
      if (c.feature == 0) {
        count_weight = c.weight;
        EXPECT_TRUE(c.magnitude);  // Count features use |relevance|.
      }
      if (c.feature == 1) {
        mean_weight = c.weight;
        EXPECT_FALSE(c.magnitude);
      }
    }
    EXPECT_NEAR(count_weight, 0.2, 1e-12);
    EXPECT_NEAR(mean_weight, 0.2, 1e-12);
  }
}

TEST(FeatureExtractorTest, MinMaxAttachToAchievingUnit) {
  const FeatureExtractor extractor(1, /*simplified=*/false);
  ScoredUnitSet set;
  for (double score : {0.9, -0.7, 0.2}) {
    DecisionUnit unit;
    unit.paired = true;
    set.units.push_back(unit);
    set.scores.push_back(score);
  }
  const auto& names = extractor.feature_names();
  size_t max_feature = 0, min_feature = 0;
  for (size_t f = 0; f < names.size(); ++f) {
    if (names[f] == "all_max") max_feature = f;
    if (names[f] == "all_min") min_feature = f;
  }
  const UnitAttribution attribution = extractor.Attribution(set);
  auto weight_on = [&](size_t unit, size_t feature) {
    for (const auto& c : attribution[unit]) {
      if (c.feature == feature) return c.weight;
    }
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(weight_on(0, max_feature), 1.0);  // 0.9 achieves max.
  EXPECT_DOUBLE_EQ(weight_on(1, max_feature), 0.0);
  EXPECT_DOUBLE_EQ(weight_on(1, min_feature), 1.0);  // -0.7 achieves min.
}

// ---------------------------------------------------------------------
// Explainable matcher.
// ---------------------------------------------------------------------

TEST(ExplainableMatcherTest, LearnsAndExplains) {
  // Matches: many positive-scored paired units. Non-matches: negative
  // unpaired units.
  std::vector<ScoredUnitSet> train;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const bool match = i % 2 == 0;
    ScoredUnitSet set;
    const size_t paired = match ? 5 : 1;
    const size_t unpaired = match ? 1 : 5;
    for (size_t u = 0; u < paired; ++u) {
      DecisionUnit unit;
      unit.paired = true;
      set.units.push_back(unit);
      set.scores.push_back(rng.Uniform(0.3, 0.9));
    }
    for (size_t u = 0; u < unpaired; ++u) {
      DecisionUnit unit;
      unit.paired = false;
      set.units.push_back(unit);
      set.scores.push_back(rng.Uniform(-0.9, -0.3));
    }
    train.push_back(std::move(set));
    labels.push_back(match ? 1 : 0);
  }

  ExplainableMatcher matcher(1, /*simplified=*/false);
  matcher.Fit(train, labels, {}, {});
  ASSERT_TRUE(matcher.fitted());
  EXPECT_GT(matcher.best_validation_f1(), 0.9);

  // In aggregate, the paired positive units push toward match and the
  // unpaired negative units toward non-match (individual units may pick
  // up small cross-terms from min/max features).
  const std::vector<double> impacts = matcher.UnitImpacts(train[0]);
  double paired_impact = 0.0, unpaired_impact = 0.0;
  for (size_t u = 0; u < train[0].size(); ++u) {
    (train[0].units[u].paired ? paired_impact : unpaired_impact) +=
        impacts[u];
  }
  EXPECT_GT(paired_impact, 0.0);
  EXPECT_LT(unpaired_impact, 0.0);
}

TEST(ExplainableMatcherTest, SingleClassifierSelection) {
  std::vector<ScoredUnitSet> train;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    ScoredUnitSet set;
    DecisionUnit unit;
    unit.paired = i % 2 == 0;
    set.units.push_back(unit);
    set.scores.push_back(i % 2 == 0 ? 0.8 : -0.8);
    train.push_back(std::move(set));
    labels.push_back(i % 2 == 0 ? 1 : 0);
  }
  ExplainableMatcherOptions options;
  options.classifier = "LR";
  ExplainableMatcher matcher(1, false, options);
  matcher.Fit(train, labels, {}, {});
  EXPECT_EQ(matcher.best_name(), "LR");
  EXPECT_EQ(matcher.pool().size(), 1u);
  EXPECT_GT(matcher.PredictProba(train[0]), 0.5);
  EXPECT_LT(matcher.PredictProba(train[1]), 0.5);
}

}  // namespace
}  // namespace wym::core
