#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.h"
#include "util/random.h"

namespace wym::nn {
namespace {

MlpOptions SmallOptions() {
  MlpOptions options;
  options.hidden = {16, 8};
  options.epochs = 200;
  options.batch_size = 16;
  options.learning_rate = 5e-3;
  options.clamp_output = false;
  options.seed = 11;
  return options;
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(5);
  la::Matrix x(128, 2);
  std::vector<double> y(128);
  for (size_t i = 0; i < 128; ++i) {
    x.At(i, 0) = rng.Uniform(-1, 1);
    x.At(i, 1) = rng.Uniform(-1, 1);
    y[i] = 0.5 * x.At(i, 0) - 0.3 * x.At(i, 1);
  }
  Mlp mlp(SmallOptions());
  mlp.Fit(x, y);
  double error = 0.0;
  for (size_t i = 0; i < 128; ++i) {
    error += std::fabs(mlp.Predict(x.RowVector(i)) - y[i]);
  }
  EXPECT_LT(error / 128.0, 0.08);
}

TEST(MlpTest, LearnsNonlinearXor) {
  // XOR-ish: y = 1 when signs differ, -1 otherwise. Needs a hidden layer.
  Rng rng(9);
  la::Matrix x(256, 2);
  std::vector<double> y(256);
  for (size_t i = 0; i < 256; ++i) {
    x.At(i, 0) = rng.Uniform(-1, 1);
    x.At(i, 1) = rng.Uniform(-1, 1);
    y[i] = (x.At(i, 0) * x.At(i, 1) < 0) ? 1.0 : -1.0;
  }
  MlpOptions options = SmallOptions();
  options.epochs = 400;
  Mlp mlp(options);
  mlp.Fit(x, y);
  size_t correct = 0;
  for (size_t i = 0; i < 256; ++i) {
    const double predicted = mlp.Predict(x.RowVector(i));
    if ((predicted > 0) == (y[i] > 0)) ++correct;
  }
  EXPECT_GT(correct, 230u);  // > 90%.
}

TEST(MlpTest, ClampBoundsOutput) {
  la::Matrix x(8, 1);
  std::vector<double> y(8, 100.0);  // Targets far outside [-1, 1].
  for (size_t i = 0; i < 8; ++i) x.At(i, 0) = 1.0;
  MlpOptions options = SmallOptions();
  options.clamp_output = true;
  Mlp mlp(options);
  mlp.Fit(x, y);
  EXPECT_LE(mlp.Predict({1.0}), 1.0);
  EXPECT_GE(mlp.Predict({1.0}), -1.0);
}

TEST(MlpTest, DeterministicForSeed) {
  Rng rng(3);
  la::Matrix x(32, 3);
  std::vector<double> y(32);
  for (size_t i = 0; i < 32; ++i) {
    for (size_t j = 0; j < 3; ++j) x.At(i, j) = rng.Uniform();
    y[i] = rng.Uniform();
  }
  MlpOptions options = SmallOptions();
  options.epochs = 20;
  Mlp a(options), b(options);
  a.Fit(x, y);
  b.Fit(x, y);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(x.RowVector(i)), b.Predict(x.RowVector(i)));
  }
}

TEST(MlpTest, PredictBatchMatchesPredict) {
  la::Matrix x(16, 2, 0.5);
  std::vector<double> y(16, 0.25);
  MlpOptions options = SmallOptions();
  options.epochs = 10;
  Mlp mlp(options);
  mlp.Fit(x, y);
  const auto batch = mlp.PredictBatch(x);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], mlp.Predict(x.RowVector(i)));
  }
}

TEST(MlpTest, PaperTopologyTrains) {
  // The paper's 300/64/32 topology must at least fit a small dataset.
  Rng rng(17);
  la::Matrix x(64, 10);
  std::vector<double> y(64);
  for (size_t i = 0; i < 64; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 10; ++j) {
      x.At(i, j) = rng.Uniform(-1, 1);
      sum += x.At(i, j);
    }
    y[i] = sum > 0 ? 1.0 : -1.0;
  }
  MlpOptions options;  // Paper defaults: hidden {300, 64, 32}.
  options.epochs = 60;
  options.batch_size = 16;
  options.learning_rate = 1e-3;
  Mlp mlp(options);
  mlp.Fit(x, y);
  size_t correct = 0;
  for (size_t i = 0; i < 64; ++i) {
    if ((mlp.Predict(x.RowVector(i)) > 0) == (y[i] > 0)) ++correct;
  }
  EXPECT_GT(correct, 55u);
}

}  // namespace
}  // namespace wym::nn
