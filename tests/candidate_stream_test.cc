// Candidate-generation tier tests: inverted-index invariants,
// fingerprint short-circuit, thread-count / SIMD determinism of the
// streaming blocker, LSH recall against the exhaustive scan, and the
// two-raw-tables MatchTables path.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "blocking/candidate_stream.h"
#include "blocking/fingerprint.h"
#include "blocking/inverted_index.h"
#include "blocking/lsh.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/catalog.h"
#include "data/corruption.h"
#include "data/split.h"
#include "la/kernels.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace wym::blocking {
namespace {

EntityTable MakeTable(std::vector<std::vector<std::string>> rows) {
  EntityTable table;
  table.schema = {{"name", "brand"}};
  for (auto& values : rows) {
    data::Entity entity;
    entity.values = std::move(values);
    table.rows.push_back(std::move(entity));
  }
  return table;
}

/// Two corrupted views of one synthetic catalog; row i of either table
/// has ground-truth identity i.
struct TablePair {
  EntityTable left, right;
  std::vector<size_t> ids;
};

TablePair MakeCorruptedPair(size_t rows, uint64_t seed) {
  Rng rng(seed);
  const data::Schema schema = data::DomainSchema(data::Domain::kProduct);
  const auto catalog = data::GenerateCatalog(data::Domain::kProduct, rows, &rng);
  data::CorruptionProfile profile;
  TablePair out;
  out.left.schema = schema;
  out.right.schema = schema;
  for (size_t i = 0; i < catalog.size(); ++i) {
    data::Entity base;
    base.values = catalog[i].values;
    out.left.rows.push_back(data::CorruptEntity(base, schema, profile, &rng));
    out.right.rows.push_back(data::CorruptEntity(base, schema, profile, &rng));
    out.ids.push_back(i);
  }
  return out;
}

std::set<std::string> RowTokenSet(const data::Entity& row,
                                  const text::Tokenizer& tokenizer) {
  std::set<std::string> tokens;
  for (const auto& value : row.values) {
    for (auto& token : tokenizer.Tokenize(value)) {
      tokens.insert(std::move(token));
    }
  }
  return tokens;
}

/// The seed TokenBlocker, reimplemented naively: exhaustive probe over
/// full posting lists, no prefix filter, no early exit. The optimized
/// path must reproduce this list exactly.
std::vector<CandidatePair> ReferenceTokenCandidates(
    const EntityTable& left, const EntityTable& right,
    const TokenBlockerOptions& options) {
  const text::Tokenizer tokenizer;
  std::vector<std::set<std::string>> right_tokens(right.size());
  std::map<std::string, size_t> df;
  for (size_t r = 0; r < right.size(); ++r) {
    right_tokens[r] = RowTokenSet(right.rows[r], tokenizer);
    for (const auto& token : right_tokens[r]) ++df[token];
  }
  const size_t stop_count = static_cast<size_t>(
      options.max_token_frequency * static_cast<double>(right.size()));

  std::vector<CandidatePair> out;
  for (size_t l = 0; l < left.size(); ++l) {
    const std::set<std::string> tokens = RowTokenSet(left.rows[l], tokenizer);
    std::map<size_t, size_t> shared_counts;
    for (const auto& token : tokens) {
      auto it = df.find(token);
      if (it == df.end()) continue;
      if (stop_count > 0 && it->second > stop_count) continue;
      for (size_t r = 0; r < right.size(); ++r) {
        if (right_tokens[r].count(token)) ++shared_counts[r];
      }
    }
    std::vector<CandidatePair> row_candidates;
    for (const auto& [r, shared] : shared_counts) {
      if (shared < options.min_shared_tokens) continue;
      size_t full_shared = 0;
      for (const auto& token : tokens) {
        full_shared += right_tokens[r].count(token);
      }
      const size_t unioned =
          tokens.size() + right_tokens[r].size() - full_shared;
      const double jaccard = unioned == 0 ? 0.0
                                          : static_cast<double>(full_shared) /
                                                static_cast<double>(unioned);
      if (jaccard < options.min_jaccard) continue;
      row_candidates.push_back({l, r, jaccard});
    }
    std::sort(row_candidates.begin(), row_candidates.end(),
              [](const CandidatePair& a, const CandidatePair& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.right_row < b.right_row;
              });
    if (options.max_candidates_per_row > 0 &&
        row_candidates.size() > options.max_candidates_per_row) {
      row_candidates.resize(options.max_candidates_per_row);
    }
    out.insert(out.end(), row_candidates.begin(), row_candidates.end());
  }
  return out;
}

void ExpectSameCandidates(const std::vector<CandidatePair>& a,
                          const std::vector<CandidatePair>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left_row, b[i].left_row) << "at " << i;
    EXPECT_EQ(a[i].right_row, b[i].right_row) << "at " << i;
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << "at " << i;
  }
}

TEST(ShardedInvertedIndexTest, BuildsConsistentCsr) {
  const EntityTable table = MakeTable({{"digital camera x100", "sony"},
                                       {"wireless router r7", "netgear"},
                                       {"digital frame", "sony"}});
  const text::Tokenizer tokenizer;
  ShardedInvertedIndex index;
  index.Build(table, tokenizer, /*stop_fraction=*/1.0);

  ASSERT_TRUE(index.built());
  EXPECT_EQ(index.rows(), 3u);
  EXPECT_TRUE(index.DebugValidate());

  // Vocabulary is sorted, ids round-trip, and df matches the data.
  for (uint32_t id = 0; id + 1 < index.vocab_size(); ++id) {
    EXPECT_LT(index.Token(id), index.Token(id + 1));
  }
  const uint32_t digital = index.TokenId("digital");
  ASSERT_NE(digital, ShardedInvertedIndex::kNoToken);
  EXPECT_EQ(index.Df(digital), 2u);
  size_t count = 0;
  const uint32_t* postings = index.Postings(digital, &count);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(postings[0], 0u);
  EXPECT_EQ(postings[1], 2u);
  EXPECT_EQ(index.TokenId("nonexistent"), ShardedInvertedIndex::kNoToken);

  // Row CSR: sorted unique ids, equal to the row's sorted token set.
  const uint32_t* row0 = index.RowTokens(0, &count);
  ASSERT_EQ(count, 4u);
  for (size_t i = 0; i + 1 < count; ++i) EXPECT_LT(row0[i], row0[i + 1]);
  EXPECT_EQ(index.RowTokenCount(1), 4u);
}

TEST(ShardedInvertedIndexTest, StopTokensFollowSeedRule) {
  // "common" in 3/4 rows; stop threshold floor(0.5 * 4) = 2 -> stop.
  const EntityTable table = MakeTable({{"common aa", "x"},
                                       {"common bb", "x"},
                                       {"common cc", "y"},
                                       {"dd", "y"}});
  const text::Tokenizer tokenizer;
  ShardedInvertedIndex index;
  index.Build(table, tokenizer, /*stop_fraction=*/0.5);
  EXPECT_EQ(index.stop_df(), 2u);
  EXPECT_TRUE(index.IsStop(index.TokenId("common")));  // df 3 > 2.
  EXPECT_FALSE(index.IsStop(index.TokenId("x")));      // df 2 is not > 2.
  EXPECT_FALSE(index.IsStop(index.TokenId("aa")));

  // A stop fraction yielding floor 0 disables pruning entirely.
  ShardedInvertedIndex tiny;
  tiny.Build(MakeTable({{"a a", "b"}}), tokenizer, /*stop_fraction=*/0.25);
  EXPECT_EQ(tiny.stop_df(), 0u);
  EXPECT_FALSE(tiny.IsStop(tiny.TokenId("a")));
}

TEST(ShardedInvertedIndexTest, IdenticalAtEveryThreadCount) {
  const TablePair pair = MakeCorruptedPair(120, 21);
  const text::Tokenizer tokenizer;
  util::ThreadPool pool1(1), pool8(8);
  ShardedInvertedIndex a, b;
  a.Build(pair.right, tokenizer, 0.25, &pool1);
  b.Build(pair.right, tokenizer, 0.25, &pool8);

  ASSERT_EQ(a.vocab_size(), b.vocab_size());
  ASSERT_EQ(a.rows(), b.rows());
  for (uint32_t id = 0; id < a.vocab_size(); ++id) {
    ASSERT_EQ(a.Token(id), b.Token(id));
    size_t ca = 0, cb = 0;
    const uint32_t* pa = a.Postings(id, &ca);
    const uint32_t* pb = b.Postings(id, &cb);
    ASSERT_EQ(ca, cb);
    EXPECT_TRUE(std::equal(pa, pa + ca, pb));
  }
  EXPECT_TRUE(a.DebugValidate());
  EXPECT_TRUE(b.DebugValidate());
}

TEST(FingerprintTest, HashesSortedTokenSets) {
  const uint64_t fp = FingerprintTokens({"camera", "digital", "x100"});
  EXPECT_EQ(fp, FingerprintTokens({"camera", "digital", "x100"}));
  EXPECT_NE(fp, FingerprintTokens({"camera", "digital"}));
  // The separator keeps token boundaries: {"ab","c"} != {"a","bc"}.
  EXPECT_NE(FingerprintTokens({"ab", "c"}), FingerprintTokens({"a", "bc"}));
}

TEST(FingerprintTest, IndexFindsEqualTokenSets) {
  const EntityTable table = MakeTable({{"digital camera x100", "sony"},
                                       {"x100 sony digital camera", ""},
                                       {"unrelated row", "ikea"}});
  const text::Tokenizer tokenizer;
  ShardedInvertedIndex index;
  index.Build(table, tokenizer, 1.0);
  FingerprintIndex fingerprints;
  fingerprints.Build(index);
  ASSERT_EQ(fingerprints.size(), 3u);

  // Rows 0 and 1 have the same token *set* (order/attribute-independent).
  std::vector<uint32_t> rows;
  fingerprints.Lookup(
      FingerprintTokens({"camera", "digital", "sony", "x100"}), &rows);
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 1}));
}

TEST(CandidateStreamTest, MatchesExhaustiveReferenceBlocker) {
  const TablePair pair = MakeCorruptedPair(80, 33);
  for (const double min_jaccard : {0.15, 0.4}) {
    TokenBlockerOptions options;
    options.min_jaccard = min_jaccard;
    const TokenBlocker blocker(options);
    ExpectSameCandidates(blocker.Candidates(pair.left, pair.right),
                         ReferenceTokenCandidates(pair.left, pair.right,
                                                  options));
  }
}

TEST(CandidateStreamTest, ByteIdenticalAcrossThreadCounts) {
  const TablePair pair = MakeCorruptedPair(150, 5);
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});

  CandidateStreamOptions options;
  options.encoder = &encoder;  // LSH stage on.
  options.exact_short_circuit = true;

  util::ThreadPool pool1(1), pool8(8);
  CandidateStream stream1(pair.left, pair.right, options, &pool1);
  CandidateStream stream8(pair.left, pair.right, options, &pool8);
  const auto candidates1 = stream1.Drain();
  const auto candidates8 = stream8.Drain();
  EXPECT_FALSE(candidates1.empty());
  ExpectSameCandidates(candidates1, candidates8);
}

TEST(CandidateStreamTest, ByteIdenticalAcrossSimdLevels) {
  const TablePair pair = MakeCorruptedPair(60, 9);
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});
  CandidateStreamOptions options;
  options.encoder = &encoder;

  const la::kernels::SimdLevel detected = la::kernels::DetectedSimdLevel();
  const la::kernels::SimdLevel previous = la::kernels::ActiveSimdLevel();
  std::vector<std::vector<CandidatePair>> per_level;
  for (int level = 0; level <= static_cast<int>(detected); ++level) {
    la::kernels::SetSimdLevel(static_cast<la::kernels::SimdLevel>(level));
    CandidateStream stream(pair.left, pair.right, options);
    per_level.push_back(stream.Drain());
  }
  la::kernels::SetSimdLevel(previous);
  for (size_t i = 1; i < per_level.size(); ++i) {
    ExpectSameCandidates(per_level[0], per_level[i]);
  }
}

TEST(CandidateStreamTest, ChunkedStreamEqualsDrain) {
  const TablePair pair = MakeCorruptedPair(50, 13);
  CandidateStreamOptions options;
  options.chunk_left_rows = 7;
  CandidateStream chunked(pair.left, pair.right, options);
  std::vector<CandidatePair> accumulated, chunk;
  size_t chunks = 0;
  while (chunked.Next(&chunk)) {
    // Chunks are ordered by left row and bounded by the chunk size.
    for (const auto& pair_out : chunk) {
      EXPECT_LT(pair_out.left_row, chunked.left_rows_consumed());
    }
    accumulated.insert(accumulated.end(), chunk.begin(), chunk.end());
    ++chunks;
  }
  EXPECT_EQ(chunks, (pair.left.size() + 6) / 7);
  EXPECT_EQ(chunked.left_rows_consumed(), pair.left.size());

  CandidateStream whole(pair.left, pair.right, CandidateStreamOptions{});
  ExpectSameCandidates(accumulated, whole.Drain());
}

TEST(CandidateStreamTest, ExactDuplicateShortCircuit) {
  // Left row 0's token set equals right row 1's (order scrambled);
  // left row 1 matches nothing exactly.
  const EntityTable left = MakeTable({{"x100 digital camera", "sony"},
                                      {"wireless router r7", "netgear"}});
  const EntityTable right = MakeTable({{"oak dining table", "ikea"},
                                       {"sony camera digital x100", ""},
                                       {"wireless router r9", "netgear"}});
  CandidateStreamOptions options;
  options.exact_short_circuit = true;
  obs::Counter& dupes =
      obs::Registry::Global().GetCounter("blocking.exact_dupes");
  const uint64_t dupes_before = dupes.Value();

  CandidateStream stream(left, right, options);
  const auto candidates = stream.Drain();

  // Row 0 short-circuits to exactly its duplicate at score 1.0.
  std::vector<CandidatePair> row0;
  for (const auto& c : candidates) {
    if (c.left_row == 0) row0.push_back(c);
  }
  ASSERT_EQ(row0.size(), 1u);
  EXPECT_EQ(row0[0].right_row, 1u);
  EXPECT_DOUBLE_EQ(row0[0].score, 1.0);
  // Row 1 still goes through the token probe.
  bool found_row1 = false;
  for (const auto& c : candidates) {
    if (c.left_row == 1 && c.right_row == 2) found_row1 = true;
  }
  EXPECT_TRUE(found_row1);
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(dupes.Value(), dupes_before + 1);
  }
}

TEST(EmbeddingLshTest, RecallAgainstExhaustiveScan) {
  const TablePair pair = MakeCorruptedPair(100, 17);
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});
  const text::Tokenizer tokenizer;

  EmbeddingLsh lsh(&encoder);  // Default options.
  lsh.Build(pair.right, tokenizer);

  // Exhaustive reference: all pooled cosines, same filter + top-k.
  const EmbeddingLshOptions defaults;
  std::vector<la::Vec> right_pool(pair.right.size());
  for (size_t r = 0; r < pair.right.size(); ++r) {
    right_pool[r] = lsh.PoolRow(pair.right.rows[r], tokenizer);
  }
  size_t reference_pairs = 0, recovered = 0;
  for (size_t l = 0; l < pair.left.size(); ++l) {
    const la::Vec pooled = lsh.PoolRow(pair.left.rows[l], tokenizer);
    if (pooled.empty()) continue;
    std::vector<CandidatePair> exact;
    for (size_t r = 0; r < pair.right.size(); ++r) {
      if (right_pool[r].empty()) continue;
      const double cosine = la::kernels::Dot(pooled.data(),
                                             right_pool[r].data(),
                                             pooled.size());
      if (cosine < defaults.min_cosine) continue;
      exact.push_back({l, r, cosine});
    }
    std::sort(exact.begin(), exact.end(),
              [](const CandidatePair& a, const CandidatePair& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.right_row < b.right_row;
              });
    if (exact.size() > defaults.k) exact.resize(defaults.k);

    std::vector<CandidatePair> approx;
    lsh.Probe(l, pooled, &approx);
    std::set<size_t> approx_rows;
    for (const auto& c : approx) approx_rows.insert(c.right_row);
    for (const auto& c : exact) {
      ++reference_pairs;
      recovered += approx_rows.count(c.right_row);
    }
  }
  ASSERT_GT(reference_pairs, 0u);
  EXPECT_GE(static_cast<double>(recovered) /
                static_cast<double>(reference_pairs),
            0.95);
}

TEST(EmbeddingLshTest, QuantizedVerifyTracksExactVerify) {
  const TablePair pair = MakeCorruptedPair(100, 17);
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});
  const text::Tokenizer tokenizer;

  EmbeddingLsh exact(&encoder);
  exact.Build(pair.right, tokenizer);
  EmbeddingLshOptions quantized_options;
  quantized_options.quantized_verify = true;
  EmbeddingLsh quantized(&encoder, quantized_options);
  quantized.Build(pair.right, tokenizer);

  // Same buckets, approximate scores: the quantized verifier must
  // recover nearly every exact-verified candidate (only pairs at the
  // min_cosine boundary or displaced at the top-k cut may differ), and
  // each shared pair's score must sit within the int8 error bound.
  size_t exact_pairs = 0, recovered = 0;
  for (size_t l = 0; l < pair.left.size(); ++l) {
    const la::Vec pooled = exact.PoolRow(pair.left.rows[l], tokenizer);
    if (pooled.empty()) continue;
    std::vector<CandidatePair> exact_out, quantized_out;
    exact.Probe(l, pooled, &exact_out);
    quantized.Probe(l, pooled, &quantized_out);
    for (const auto& e : exact_out) {
      ++exact_pairs;
      for (const auto& q : quantized_out) {
        if (q.right_row == e.right_row) {
          ++recovered;
          EXPECT_NEAR(q.score, e.score, 0.05);
          break;
        }
      }
    }
  }
  ASSERT_GT(exact_pairs, 0u);
  EXPECT_GE(static_cast<double>(recovered) / static_cast<double>(exact_pairs),
            0.95);
}

TEST(MatchTablesTest, StreamsRankedMatchesEndToEnd) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.5);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  // Two raw tables from the test split: matched records land on the
  // diagonal (identity i for row i of both tables).
  EntityTable left, right;
  left.schema = dataset.schema;
  right.schema = dataset.schema;
  std::vector<size_t> ids;
  for (const auto& record : split.test.records) {
    if (record.label != 1) continue;
    left.rows.push_back(record.left);
    right.rows.push_back(record.right);
    ids.push_back(ids.size());
    if (ids.size() >= 12) break;
  }
  ASSERT_GE(ids.size(), 6u);

  MatchTablesOptions options;
  options.batch_candidates = 8;  // Force several flush cycles.
  MatchTablesStats stats;
  const std::vector<TableMatch> matches =
      MatchTables(model, left, right, options, nullptr, &stats);

  EXPECT_GT(stats.candidates_scored, 0u);
  EXPECT_GE(matches.size(), ids.size() / 2);  // Most diagonals match.
  size_t diagonal = 0;
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_LT(matches[i].left_row, left.size());
    EXPECT_LT(matches[i].right_row, right.size());
    EXPECT_GE(matches[i].probability, options.min_probability);
    EXPECT_GT(matches[i].blocking_score, 0.0);
    if (i > 0) {
      EXPECT_LE(matches[i].probability, matches[i - 1].probability);
    }
    diagonal += matches[i].left_row == matches[i].right_row;
  }
  EXPECT_GE(diagonal, ids.size() / 2);

  // The same run through a model-free stream finds the diagonal too
  // (sanity that candidate generation, not the matcher, does recall).
  CandidateStreamOptions stream_options;
  stream_options.encoder = &model.encoder();
  CandidateStream stream(left, right, stream_options);
  EXPECT_GT(BlockingRecall(stream.Drain(), ids, ids), 0.8);
}

}  // namespace
}  // namespace wym::blocking
