// Tests for the cross-TU analyzers (src/analysis): include-graph
// layering + cycles, the approximate call graph, the determinism taint
// pass, and the shared findings/report model. Fixture trees are built
// from string literals — no filesystem — which is exactly what
// SourceTree::Add exists for.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/call_graph.h"
#include "analysis/findings.h"
#include "analysis/include_graph.h"
#include "analysis/source_model.h"
#include "analysis/taint.h"
#include "obs/json.h"

namespace wym::analysis {
namespace {

bool HasCheck(const std::vector<lint::Finding>& findings,
              const std::string& check) {
  for (const lint::Finding& f : findings) {
    if (f.check == check) return true;
  }
  return false;
}

const lint::Finding* FindCheck(const Report& report,
                               const std::string& check) {
  for (const lint::Finding& f : report.findings) {
    if (f.check == check) return &f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Source model

TEST(SourceModelTest, FilesStaySortedAndIndexable) {
  SourceTree tree;
  tree.Add("src/util/b.h", "int b;\n");
  tree.Add("src/core/a.h", "int a;\n");
  tree.Add("tools/c.cc", "int c;\n");
  ASSERT_EQ(tree.files.size(), 3u);
  EXPECT_EQ(tree.files[0].path, "src/core/a.h");
  EXPECT_EQ(tree.files[1].path, "src/util/b.h");
  EXPECT_EQ(tree.files[2].path, "tools/c.cc");
  EXPECT_EQ(tree.IndexOf("src/util/b.h"), 1u);
  EXPECT_EQ(tree.IndexOf("missing.h"), SourceTree::npos);
}

TEST(SourceModelTest, MarkersAreParsedAndMalformedOnesQuarantined) {
  SourceTree tree;
  tree.Add("src/core/a.cc",
           "// wym-lint: allow(layer-order): sanctioned edge\n"
           "#include \"core/b.h\"\n"
           "// wym-lint: allow(not-a-check): bogus\n");
  const SourceFile& file = tree.files[0];
  ASSERT_EQ(file.suppressions.size(), 1u);
  EXPECT_EQ(file.suppressions[0].check, "layer-order");
  EXPECT_EQ(file.suppressions[0].reason, "sanctioned edge");
  // The malformed marker never lands in `suppressions` (fail-safe) but
  // is preserved for the lint pass.
  ASSERT_EQ(file.marker_findings.size(), 1u);
  EXPECT_EQ(file.marker_findings[0].check, "lint-suppression");
}

TEST(SourceModelTest, SuppressionCoversOwnLineAndNextOnly) {
  SourceTree tree;
  tree.Add("src/core/a.cc",
           "// wym-lint: allow(taint-flow): pinned below\n"
           "int x;\n"
           "int y;\n");
  const SourceFile& file = tree.files[0];
  EXPECT_NE(FindSuppression(file, "taint-flow", 1), nullptr);
  EXPECT_NE(FindSuppression(file, "taint-flow", 2), nullptr);
  EXPECT_EQ(FindSuppression(file, "taint-flow", 3), nullptr);
  EXPECT_EQ(FindSuppression(file, "layer-order", 2), nullptr);
}

// ---------------------------------------------------------------------
// Include graph: layering

// A fixture with one clean downward edge and one upward violation:
// src/la (layer 2) including src/core (layer 4).
SourceTree LayeringFixture(bool suppressed) {
  SourceTree tree;
  tree.Add("src/util/io.h", "#pragma once\n");
  tree.Add("src/core/model.h", "#include \"util/io.h\"\n");
  std::string la = suppressed
                       ? "// wym-lint: allow(layer-order): test fixture\n"
                         "#include \"core/model.h\"\n"
                       : "#include \"core/model.h\"\n";
  tree.Add("src/la/kernels.cc", la);
  return tree;
}

TEST(IncludeGraphTest, ResolvesSrcRelativeAndIncluderRelative) {
  SourceTree tree;
  tree.Add("src/core/model.h", "#pragma once\n");
  tree.Add("src/core/model.cc",
           "#include \"model.h\"\n"         // includer-relative
           "#include \"core/model.h\"\n"    // src-relative
           "#include <vector>\n");          // system: ignored
  const IncludeGraph graph = BuildIncludeGraph(tree);
  ASSERT_EQ(graph.edges.size(), 2u);
  EXPECT_EQ(tree.files[graph.edges[0].to].path, "src/core/model.h");
  EXPECT_EQ(graph.edges[0].line, 1);
  EXPECT_EQ(graph.edges[1].line, 2);
}

TEST(IncludeGraphTest, UpwardIncludeIsALayerOrderFinding) {
  const SourceTree tree = LayeringFixture(/*suppressed=*/false);
  const Report report = RunGraphPass(tree);
  const lint::Finding* finding = FindCheck(report, "layer-order");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->path, "src/la/kernels.cc");
  EXPECT_EQ(finding->line, 1);
  EXPECT_NE(finding->message.find("src/core/model.h"), std::string::npos);
  EXPECT_NE(finding->message.find("src/core"), std::string::npos);
  EXPECT_EQ(report.ExitCode(), 5);
}

TEST(IncludeGraphTest, ReasonedSuppressionClearsTheViolation) {
  const SourceTree tree = LayeringFixture(/*suppressed=*/true);
  const Report report = RunGraphPass(tree);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressions_honored, 1);
  EXPECT_EQ(report.ExitCode(), 0);
}

TEST(IncludeGraphTest, StaleLayerOrderMarkerIsExitSix) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "// wym-lint: allow(layer-order): excuses nothing\n"
           "int x;\n");
  const Report report = RunGraphPass(tree);
  const lint::Finding* stale = FindCheck(report, "stale-suppression");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->line, 1);
  EXPECT_EQ(report.ExitCode(), 6);
}

TEST(IncludeGraphTest, DownwardAndSidewaysEdgesAreClean) {
  SourceTree tree;
  tree.Add("src/util/io.h", "#pragma once\n");
  tree.Add("src/core/model.h", "#include \"util/io.h\"\n");
  tree.Add("src/la/vec.h", "#include \"text/tok.h\"\n");  // sideways, 2->2
  tree.Add("src/text/tok.h", "#include \"util/io.h\"\n");
  tree.Add("tools/cli.cc", "#include \"core/model.h\"\n");
  const Report report = RunGraphPass(tree);
  EXPECT_TRUE(report.findings.empty()) << RenderText(report);
}

TEST(IncludeGraphTest, ServeSitsAboveCoreBesideBlocking) {
  // serve -> core (down) and serve -> blocking (sideways, 5 -> 5) are
  // clean; core -> serve is an upward edge and a finding.
  SourceTree tree;
  tree.Add("src/core/wym.h", "#pragma once\n");
  tree.Add("src/blocking/fingerprint.h", "#include \"core/wym.h\"\n");
  tree.Add("src/serve/service.h",
           "#include \"core/wym.h\"\n"
           "#include \"blocking/fingerprint.h\"\n");
  const Report clean = RunGraphPass(tree);
  EXPECT_TRUE(clean.findings.empty()) << RenderText(clean);

  tree.Add("src/core/bad.cc", "#include \"serve/service.h\"\n");
  const Report report = RunGraphPass(tree);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].check, "layer-order");
  EXPECT_EQ(report.findings[0].path, "src/core/bad.cc");
}

// ---------------------------------------------------------------------
// Include graph: cycles

TEST(IncludeGraphTest, IncludeCycleIsReportedOnceAtSmallestMember) {
  SourceTree tree;
  tree.Add("src/core/a.h", "#include \"core/b.h\"\n");
  tree.Add("src/core/b.h", "#include \"core/c.h\"\n");
  tree.Add("src/core/c.h", "#include \"core/a.h\"\n");
  const Report report = RunGraphPass(tree);
  ASSERT_EQ(report.findings.size(), 1u);
  const lint::Finding& f = report.findings[0];
  EXPECT_EQ(f.check, "include-cycle");
  EXPECT_EQ(f.path, "src/core/a.h");
  EXPECT_EQ(f.line, 1);
  EXPECT_NE(
      f.message.find("src/core/a.h -> src/core/b.h -> src/core/c.h -> "
                     "src/core/a.h"),
      std::string::npos)
      << f.message;
  EXPECT_EQ(report.ExitCode(), 5);
}

TEST(IncludeGraphTest, IncludeCycleCannotBeSuppressed) {
  SourceTree tree;
  tree.Add("src/core/a.h",
           "// wym-lint: allow(include-cycle): trying anyway\n"
           "#include \"core/b.h\"\n");
  tree.Add("src/core/b.h", "#include \"core/a.h\"\n");
  const Report report = RunGraphPass(tree);
  EXPECT_TRUE(HasCheck(report.findings, "include-cycle"));
  // The marker is stale by definition, which gates harder (exit 6).
  EXPECT_TRUE(HasCheck(report.findings, "stale-suppression"));
  EXPECT_EQ(report.ExitCode(), 6);
}

TEST(IncludeGraphTest, AcyclicTreeHasNoCycleFindings) {
  SourceTree tree;
  tree.Add("src/core/a.h", "#include \"core/b.h\"\n");
  tree.Add("src/core/b.h", "#pragma once\n");
  const Report report = RunGraphPass(tree);
  EXPECT_FALSE(HasCheck(report.findings, "include-cycle"));
}

// ---------------------------------------------------------------------
// Layer table

TEST(LayerTest, DeclaredRanksMatchTheDag) {
  EXPECT_EQ(LayerOf("src/util/io.h"), 0);
  EXPECT_EQ(LayerOf("src/obs/metrics.h"), 1);
  EXPECT_EQ(LayerOf("src/la/kernels.h"), 2);
  EXPECT_EQ(LayerOf("src/analysis/taint.h"), 2);
  EXPECT_EQ(LayerOf("src/matching/stable_marriage.h"), 3);
  EXPECT_EQ(LayerOf("src/core/model.h"), 4);
  EXPECT_EQ(LayerOf("src/explain/explainer.h"), 5);
  EXPECT_EQ(LayerOf("src/serve/service.h"), 5);
  EXPECT_EQ(LayerOf("tools/wym_cli.cc"), 6);
  EXPECT_EQ(LayerOf("tests/core_test.cc"), 6);
  EXPECT_EQ(LayerOf("README.md"), kLayerUnknown);
  EXPECT_EQ(LayerName(4), "src/core");
}

// ---------------------------------------------------------------------
// Call graph

TEST(CallGraphTest, RecoversQualifiedDefinitionsAndEdges) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "int Helper(int x) { return x + 1; }\n"
           "int Entry() { return Helper(2); }\n"
           "}  // namespace wym::core\n");
  const CallGraph graph = BuildCallGraph(tree);
  ASSERT_EQ(graph.defs.size(), 2u);
  EXPECT_EQ(graph.defs[0].qualified_name, "wym::core::Helper");
  EXPECT_EQ(graph.defs[1].qualified_name, "wym::core::Entry");
  EXPECT_EQ(graph.defs[1].Name(), "Entry");
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].caller, 1u);
  EXPECT_EQ(graph.edges[0].callee, 0u);
  EXPECT_EQ(graph.edges[0].line, 3);
}

TEST(CallGraphTest, OutOfLineMembersGetClassQualifiedNames) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "struct Model {\n"
           "  void Fit();\n"
           "  int n_ = 0;\n"
           "};\n"
           "void Model::Fit() { n_ = 1; }\n"
           "}  // namespace wym::core\n");
  const CallGraph graph = BuildCallGraph(tree);
  ASSERT_EQ(graph.defs.size(), 1u);
  EXPECT_EQ(graph.defs[0].qualified_name, "wym::core::Model::Fit");
}

TEST(CallGraphTest, ConstructorInitializerListBodyIsADefinition) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "int Source() { return 1; }\n"
           "struct Model {\n"
           "  Model() : n_(Source()), m_{2} { n_ += Source(); }\n"
           "  int n_; int m_;\n"
           "};\n"
           "}\n");
  const CallGraph graph = BuildCallGraph(tree);
  ASSERT_EQ(graph.defs.size(), 2u);
  EXPECT_EQ(graph.defs[1].qualified_name, "wym::core::Model::Model");
  // The body call resolves; init-list calls are outside the body.
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.defs[graph.edges[0].callee].Name(), "Source");
}

TEST(CallGraphTest, MemberCallsResolveAcrossFilesWithinDomain) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "void Run(Writer& w) { w.Write(1); }\n"
           "}\n");
  tree.Add("src/util/io.cc",
           "namespace wym::util {\n"
           "void Writer::Write(int x) { (void)x; }\n"
           "}\n");
  tree.Add("tests/t.cc",
           "void Write(int x) { (void)x; }\n");
  const CallGraph graph = BuildCallGraph(tree);
  // The member call matches the src-domain Write, not the tests one.
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.defs[graph.edges[0].callee].qualified_name,
            "wym::util::Writer::Write");
}

TEST(CallGraphTest, DeclarationsAndControlKeywordsAreNotCalls) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "int Declared(int x);\n"
           "int F() {\n"
           "  if (true) { while (false) {} }\n"
           "  return sizeof(int);\n"
           "}\n"
           "}\n");
  const CallGraph graph = BuildCallGraph(tree);
  ASSERT_EQ(graph.defs.size(), 1u);
  EXPECT_EQ(graph.defs[0].qualified_name, "wym::core::F");
  EXPECT_TRUE(graph.edges.empty());
}

// ---------------------------------------------------------------------
// Taint

// The canonical fixture from the design doc: a helper reads a raw
// chrono clock, and a SaveToFile entry point reaches it through an
// intermediate call.
SourceTree TaintFixture(const std::string& seed_prefix) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "long Ticks() {\n" +
               seed_prefix +
               "  return std::chrono::steady_clock::now()"
               ".time_since_epoch().count();\n"
               "}\n"
               "long Stamp() { return Ticks(); }\n"
               "void SaveToFile(const char* p) { long t = Stamp(); "
               "(void)p; (void)t; }\n"
               "}\n");
  return tree;
}

TEST(TaintTest, ChronoSeedReachesSaveToFileThroughHelperChain) {
  const SourceTree tree = TaintFixture("");
  const Report report = RunTaintPass(tree);
  ASSERT_EQ(report.findings.size(), 1u);
  const lint::Finding& f = report.findings[0];
  EXPECT_EQ(f.check, "taint-flow");
  EXPECT_EQ(f.path, "src/core/model.cc");
  EXPECT_NE(f.message.find("wym::core::SaveToFile -> wym::core::Stamp "
                           "-> wym::core::Ticks"),
            std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("steady_clock"), std::string::npos);
  EXPECT_EQ(report.ExitCode(), 5);
}

TEST(TaintTest, TaintFlowMarkerAtTheSeedClearsTheChain) {
  const SourceTree tree = TaintFixture(
      "  // wym-lint: allow(taint-flow): fixture-sanctioned clock\n");
  const Report report = RunTaintPass(tree);
  EXPECT_TRUE(report.findings.empty()) << RenderText(report);
  EXPECT_EQ(report.suppressions_honored, 1);
  EXPECT_EQ(report.ExitCode(), 0);
}

TEST(TaintTest, TokenCheckMarkerAlsoClearsTheSeed) {
  // One reasoned exemption serves both passes: the no-raw-clock marker
  // that satisfies the token lint also clears the taint seed.
  const SourceTree tree = TaintFixture(
      "  // wym-lint: allow(no-raw-clock): fixture-sanctioned clock\n");
  const Report report = RunTaintPass(tree);
  EXPECT_TRUE(report.findings.empty()) << RenderText(report);
  EXPECT_EQ(report.suppressions_honored, 1);
}

TEST(TaintTest, StaleTaintMarkerIsExitSix) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "// wym-lint: allow(taint-flow): excuses nothing\n"
           "void SaveToFile(const char* p) { (void)p; }\n"
           "}\n");
  const Report report = RunTaintPass(tree);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].check, "stale-suppression");
  EXPECT_EQ(report.findings[0].line, 2);
  EXPECT_EQ(report.ExitCode(), 6);
}

TEST(TaintTest, UtilIsTheSanctionedWrapperHome) {
  SourceTree tree;
  tree.Add("src/util/stopwatch.cc",
           "namespace wym::util {\n"
           "long NowNanos() {\n"
           "  return std::chrono::steady_clock::now()"
           ".time_since_epoch().count();\n"
           "}\n"
           "}\n");
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "void SaveToFile(const char* p) { (void)p; }\n"
           "}\n");
  const Report report = RunTaintPass(tree);
  EXPECT_TRUE(report.findings.empty()) << RenderText(report);
}

TEST(TaintTest, SeedInTestDomainCannotTaintSrcSinks) {
  SourceTree tree;
  tree.Add("src/core/model.cc",
           "namespace wym::core {\n"
           "void SaveToFile(const char* p) { (void)p; }\n"
           "}\n");
  tree.Add("tests/t.cc",
           "int Jitter() { return rand(); }\n");
  const Report report = RunTaintPass(tree);
  EXPECT_TRUE(report.findings.empty()) << RenderText(report);
}

TEST(TaintTest, SinkNamesArePatternMatched) {
  FunctionDef def;
  for (const char* name :
       {"wym::core::Fit", "wym::core::SaveToFile", "wym::PredictBatch",
        "wym::explain::ExplainPair", "wym::SerializeModel"}) {
    def.qualified_name = name;
    EXPECT_TRUE(IsTaintSink(def, "src/core/m.cc")) << name;
  }
  def.qualified_name = "wym::core::Fit";
  EXPECT_FALSE(IsTaintSink(def, "tools/cli.cc"));
  def.qualified_name = "wym::core::Helper";
  EXPECT_FALSE(IsTaintSink(def, "src/core/m.cc"));
}

TEST(TaintTest, ServeRenderFunctionsAreSinks) {
  // The serving layer's wire serializers join the bit-identical
  // promise: Render* in src/serve is a sink, but only there — a
  // Render* helper elsewhere (and a non-Render serve function) is not.
  FunctionDef def;
  def.qualified_name = "wym::serve::RenderResponse";
  EXPECT_TRUE(IsTaintSink(def, "src/serve/protocol.cc"));
  EXPECT_FALSE(IsTaintSink(def, "src/explain/report.cc"));
  def.qualified_name = "wym::serve::HandleRequest";
  EXPECT_FALSE(IsTaintSink(def, "src/serve/service.cc"));
}

TEST(TaintTest, ObsRenderAndDumpFunctionsAreSinks) {
  // Telemetry serializers join the same promise: journal lines,
  // flight-recorder dumps, and telemetry exports must be pure
  // functions of the values they serialize, so Render*/Dump* in
  // src/obs are sinks — but only there, and only those prefixes.
  FunctionDef def;
  def.qualified_name = "wym::obs::RenderRequestRecord";
  EXPECT_TRUE(IsTaintSink(def, "src/obs/event_log.cc"));
  EXPECT_FALSE(IsTaintSink(def, "src/data/csv.cc"));
  def.qualified_name = "wym::obs::FlightRecorder::DumpJson";
  EXPECT_TRUE(IsTaintSink(def, "src/obs/recorder.cc"));
  def.qualified_name = "wym::obs::WindowTracker::Tick";
  EXPECT_FALSE(IsTaintSink(def, "src/obs/window.cc"));
}

TEST(TaintTest, ClockSeedReachingServeRenderPathIsAFinding) {
  // A clock read leaking into the response-serialization path must be
  // flagged: the wire bytes would no longer be a pure function of the
  // Response value.
  SourceTree tree;
  tree.Add("src/serve/protocol.cc",
           "namespace wym::serve {\n"
           "long Stamp() {\n"
           "  return std::chrono::steady_clock::now()"
           ".time_since_epoch().count();\n"
           "}\n"
           "const char* RenderResponse(int r) { long t = Stamp(); "
           "(void)r; (void)t; return \"\"; }\n"
           "}\n");
  const Report report = RunTaintPass(tree);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].check, "taint-flow");
  EXPECT_NE(report.findings[0].message.find(
                "wym::serve::RenderResponse -> wym::serve::Stamp"),
            std::string::npos)
      << report.findings[0].message;
}

// ---------------------------------------------------------------------
// Findings / report model

TEST(ReportTest, ExitCodeContractStaleWins) {
  Report report;
  EXPECT_EQ(report.ExitCode(), 0);
  report.findings.push_back({"a.cc", 1, "layer-order", "m"});
  EXPECT_EQ(report.ExitCode(), 5);
  report.findings.push_back({"a.cc", 2, "stale-suppression", "m"});
  EXPECT_EQ(report.ExitCode(), 6);
}

TEST(ReportTest, FindingsSortByPathLineCheckMessage) {
  std::vector<lint::Finding> findings = {
      {"b.cc", 1, "x", "m"},
      {"a.cc", 9, "x", "m"},
      {"a.cc", 2, "z", "m"},
      {"a.cc", 2, "y", "m"},
  };
  SortFindings(&findings);
  EXPECT_EQ(findings[0].path, "a.cc");
  EXPECT_EQ(findings[0].check, "y");
  EXPECT_EQ(findings[1].check, "z");
  EXPECT_EQ(findings[2].line, 9);
  EXPECT_EQ(findings[3].path, "b.cc");
}

TEST(ReportTest, JsonIsByteIdenticalAcrossRunsAndParses) {
  const SourceTree tree = TaintFixture("");
  const std::string a = RenderJson(RunTaintPass(tree));
  const std::string b = RenderJson(RunTaintPass(tree));
  EXPECT_EQ(a, b);  // Byte-identical, not just equivalent.

  obs::JsonValue value;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(a, &value, &error)) << error;
  ASSERT_TRUE(value.IsObject());
  const obs::JsonValue* schema = value.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "wym-analysis-report/v1");
  EXPECT_EQ(value.Find("pass")->string, "taint");
  EXPECT_EQ(value.Find("exit_code")->number, 5.0);
  const obs::JsonValue* findings = value.Find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->array.size(), 1u);
  EXPECT_EQ(findings->array[0].Find("check")->string, "taint-flow");
  EXPECT_EQ(findings->array[0].Find("severity")->string, "error");
}

TEST(ReportTest, GraphJsonValidatesUnderObsJsonToo) {
  const SourceTree tree = LayeringFixture(/*suppressed=*/false);
  const std::string text = RenderJson(RunGraphPass(tree));
  obs::JsonValue value;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(text, &value, &error)) << error << "\n" << text;
  EXPECT_EQ(value.Find("pass")->string, "graph");
  EXPECT_EQ(value.Find("exit_code")->number, 5.0);
}

TEST(ReportTest, JsonEscapingCoversControlAndQuoteCharacters) {
  EXPECT_EQ(EscapeJson("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
  // Round-trip through the validating parser.
  obs::JsonValue value;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(
      "{\"k\": \"" + EscapeJson("quote\" slash\\ nl\n") + "\"}", &value,
      &error))
      << error;
  EXPECT_EQ(value.Find("k")->string, "quote\" slash\\ nl\n");
}

TEST(ReportTest, SeverityPartitionsHygieneFromContractChecks) {
  EXPECT_EQ(SeverityOf("todo-issue"), Severity::kWarning);
  EXPECT_EQ(SeverityOf("layer-order"), Severity::kError);
  EXPECT_EQ(SeverityOf("taint-flow"), Severity::kError);
  EXPECT_EQ(SeverityOf("stale-suppression"), Severity::kError);
}

}  // namespace
}  // namespace wym::analysis
