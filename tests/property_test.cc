// Randomized property tests: invariants that must hold for arbitrary
// inputs — tokenizer robustness, corruption safety, CSV round trips over
// random content, stable-marriage structure at random sizes, and the
// decision-unit constraints under randomly generated records.

#include <gtest/gtest.h>

#include <string>

#include "core/tokenized_record.h"
#include "core/unit_generator.h"
#include "data/benchmark_gen.h"
#include "data/corruption.h"
#include "data/csv.h"
#include "explain/token_explanation.h"
#include "matching/stable_marriage.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace wym {
namespace {

std::string RandomString(Rng* rng, size_t max_length) {
  static constexpr std::string_view kAlphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 .,-/\"'()&";
  const size_t length = rng->Index(max_length + 1);
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng->Index(kAlphabet.size())];
  }
  return out;
}

// ---------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------

TEST(TokenizerPropertyTest, NeverProducesEmptyOrSpacedTokens) {
  Rng rng(1);
  const text::Tokenizer tokenizer;
  for (int trial = 0; trial < 500; ++trial) {
    for (const auto& token : tokenizer.Tokenize(RandomString(&rng, 60))) {
      EXPECT_FALSE(token.empty());
      EXPECT_EQ(token.find(' '), std::string::npos);
      for (char c : token) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '.')
            << "token '" << token << "'";
      }
    }
  }
}

TEST(TokenizerPropertyTest, IdempotentOnItsOwnOutput) {
  Rng rng(2);
  const text::Tokenizer tokenizer;
  for (int trial = 0; trial < 200; ++trial) {
    const auto tokens = tokenizer.Tokenize(RandomString(&rng, 60));
    std::string joined;
    for (const auto& token : tokens) {
      if (!joined.empty()) joined += ' ';
      joined += token;
    }
    EXPECT_EQ(tokenizer.Tokenize(joined), tokens);
  }
}

// ---------------------------------------------------------------------
// String metrics.
// ---------------------------------------------------------------------

TEST(MetricPropertyTest, SimilaritiesAreSymmetricAndBounded) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string a = RandomString(&rng, 12);
    const std::string b = RandomString(&rng, 12);
    for (auto metric : {text::JaroSimilarity, text::JaroWinklerSimilarity,
                        text::LevenshteinSimilarity}) {
      const double ab = metric(a, b);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0 + 1e-12);
      EXPECT_NEAR(ab, metric(b, a), 1e-12);
    }
    EXPECT_DOUBLE_EQ(text::JaroWinklerSimilarity(a, a), 1.0);
  }
}

TEST(MetricPropertyTest, LevenshteinTriangleInequality) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = RandomString(&rng, 10);
    const std::string b = RandomString(&rng, 10);
    const std::string c = RandomString(&rng, 10);
    EXPECT_LE(text::LevenshteinDistance(a, c),
              text::LevenshteinDistance(a, b) +
                  text::LevenshteinDistance(b, c));
  }
}

// ---------------------------------------------------------------------
// Corruption model.
// ---------------------------------------------------------------------

TEST(CorruptionPropertyTest, ViewKeepsSchemaAndIdentity) {
  Rng rng(5);
  data::Schema schema{{"name", "brand", "price"}};
  data::CorruptionProfile profile;  // Aggressive everything.
  profile.typo = 0.3;
  profile.drop_token = 0.3;
  profile.abbreviate = 0.5;
  profile.duplicate_token = 0.3;
  profile.reorder = 0.5;
  profile.value_missing = 0.5;
  profile.numeric_jitter = 0.5;
  profile.synonym = 0.5;
  profile.attr_spill = 0.5;
  for (int trial = 0; trial < 300; ++trial) {
    data::Entity entity;
    entity.values = {RandomString(&rng, 40), RandomString(&rng, 10),
                     "19.99"};
    if (entity.values[0].empty()) entity.values[0] = "x";
    const data::Entity view =
        data::CorruptEntity(entity, schema, profile, &rng);
    EXPECT_EQ(view.values.size(), schema.size());
    // Identity attribute never fully vanishes unless it spilled into
    // itself (attribute 0 is the spill target, so it only grows).
    EXPECT_FALSE(view.values[0].empty());
  }
}

// ---------------------------------------------------------------------
// CSV.
// ---------------------------------------------------------------------

TEST(CsvPropertyTest, RandomContentRoundTrips) {
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    data::Dataset dataset;
    dataset.name = "fuzz";
    dataset.schema = {{"a", "b"}};
    const size_t n = 1 + rng.Index(8);
    for (size_t i = 0; i < n; ++i) {
      data::EmRecord record;
      record.left.values = {RandomString(&rng, 20), RandomString(&rng, 20)};
      record.right.values = {RandomString(&rng, 20), RandomString(&rng, 20)};
      record.label = static_cast<int>(rng.Index(2));
      dataset.records.push_back(std::move(record));
    }
    const auto parsed =
        data::DatasetFromCsv(data::DatasetToCsv(dataset), "fuzz");
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed.value().size(), dataset.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(parsed.value().records[i].left.values,
                dataset.records[i].left.values);
      EXPECT_EQ(parsed.value().records[i].right.values,
                dataset.records[i].right.values);
      EXPECT_EQ(parsed.value().records[i].label, dataset.records[i].label);
    }
  }
}

TEST(CsvPropertyTest, GarbageInputNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string garbage = RandomString(&rng, 200);
    (void)data::DatasetFromCsv(garbage, "garbage");  // Must not crash.
  }
}

// ---------------------------------------------------------------------
// Stable marriage at random sizes (TEST_P sweep).
// ---------------------------------------------------------------------

class StableMarriagePropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(StableMarriagePropertyTest, StructureHoldsAtThisShape) {
  const auto [n_left, n_right] = GetParam();
  Rng rng(100 + n_left * 31 + n_right);
  for (int trial = 0; trial < 20; ++trial) {
    la::Matrix sim(n_left, n_right);
    for (size_t i = 0; i < n_left; ++i) {
      for (size_t j = 0; j < n_right; ++j) sim.At(i, j) = rng.Uniform();
    }
    const double threshold = rng.Uniform(0.0, 0.9);
    const auto matching = matching::StableMarriage(sim, threshold);
    EXPECT_TRUE(matching::IsStableMatching(sim, threshold, matching));
    EXPECT_LE(matching.size(), std::min(n_left, n_right));
    for (const auto& pair : matching) {
      EXPECT_GE(sim.At(pair.left, pair.right), threshold);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StableMarriagePropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(1, 9),
                      std::make_pair<size_t, size_t>(9, 1),
                      std::make_pair<size_t, size_t>(5, 5),
                      std::make_pair<size_t, size_t>(12, 7),
                      std::make_pair<size_t, size_t>(7, 12),
                      std::make_pair<size_t, size_t>(20, 20)),
    [](const auto& info) {
      return "L" + std::to_string(info.param.first) + "xR" +
             std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------
// Decision-unit constraints under random records.
// ---------------------------------------------------------------------

TEST(UnitGeneratorPropertyTest, ConstraintsHoldForRandomRecords) {
  Rng rng(8);
  const text::Tokenizer tokenizer;
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  encoder_options.hash_dim = 16;
  encoder_options.cooc_dim = 0;
  encoder_options.numeric_dims = 4;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});
  const core::DecisionUnitGenerator generator;

  const data::Schema schema{{"a", "b"}};
  for (int trial = 0; trial < 150; ++trial) {
    data::EmRecord record;
    record.left.values = {RandomString(&rng, 30), RandomString(&rng, 10)};
    record.right.values = {RandomString(&rng, 30), RandomString(&rng, 10)};
    core::TokenizedRecord tokenized =
        core::TokenizeRecord(record, schema, tokenizer);
    core::EncodeEntity(encoder, &tokenized.left);
    core::EncodeEntity(encoder, &tokenized.right);
    const auto units =
        generator.Generate(tokenized.left, tokenized.right, schema.size());
    EXPECT_TRUE(
        core::CheckUnitConstraints(units, tokenized.left, tokenized.right));
    // Phase sanity: one-to-many units always pair with a token that is
    // also in another (earlier) paired unit.
    for (const auto& unit : units) {
      if (unit.paired) {
        EXPECT_NE(unit.phase, core::UnitPhase::kUnpaired);
      } else {
        EXPECT_EQ(unit.phase, core::UnitPhase::kUnpaired);
      }
    }
  }
}

// ---------------------------------------------------------------------
// MaskRecord.
// ---------------------------------------------------------------------

TEST(MaskRecordPropertyTest, KeptTokenCountMatchesMask) {
  Rng rng(9);
  const text::Tokenizer tokenizer;
  for (int trial = 0; trial < 150; ++trial) {
    data::EmRecord record;
    record.left.values = {RandomString(&rng, 30)};
    record.right.values = {RandomString(&rng, 30)};
    const auto tokens = explain::EnumerateTokens(record, tokenizer);
    std::vector<bool> keep(tokens.size());
    size_t kept = 0;
    for (size_t t = 0; t < tokens.size(); ++t) {
      keep[t] = rng.Bernoulli(0.5);
      kept += keep[t];
    }
    const data::EmRecord masked =
        explain::MaskRecord(record, tokens, keep);
    const auto masked_tokens = explain::EnumerateTokens(masked, tokenizer);
    EXPECT_EQ(masked_tokens.size(), kept);
  }
}

// ---------------------------------------------------------------------
// Benchmark generator: labels are consistent with identity by
// construction — matching records must share identity tokens far more
// often than random non-matches.
// ---------------------------------------------------------------------

TEST(GeneratorPropertyTest, MatchesOverlapMoreThanNonMatches) {
  const text::Tokenizer tokenizer;
  for (const char* id : {"S-DA", "S-WA", "S-FZ"}) {
    const data::Dataset dataset = data::GenerateById(id, 99, 0.3);
    double match_overlap = 0.0, non_match_overlap = 0.0;
    size_t matches = 0, non_matches = 0;
    for (const auto& record : dataset.records) {
      const auto lt = tokenizer.Tokenize(record.left.values[0]);
      const auto rt = tokenizer.Tokenize(record.right.values[0]);
      size_t shared = 0;
      for (const auto& l : lt) {
        for (const auto& r : rt) shared += (l == r);
      }
      const double overlap =
          static_cast<double>(shared) /
          std::max<size_t>(1, std::max(lt.size(), rt.size()));
      if (record.label == 1) {
        match_overlap += overlap;
        ++matches;
      } else {
        non_match_overlap += overlap;
        ++non_matches;
      }
    }
    ASSERT_GT(matches, 0u);
    ASSERT_GT(non_matches, 0u);
    EXPECT_GT(match_overlap / matches,
              non_match_overlap / non_matches + 0.15)
        << id;
  }
}

}  // namespace
}  // namespace wym
