#include <gtest/gtest.h>

#include "blocking/blocker.h"
#include "data/catalog.h"
#include "data/corruption.h"
#include "util/random.h"

namespace wym::blocking {
namespace {

EntityTable MakeTable(std::vector<std::vector<std::string>> rows) {
  EntityTable table;
  table.schema = {{"name", "brand"}};
  for (auto& values : rows) {
    data::Entity entity;
    entity.values = std::move(values);
    table.rows.push_back(std::move(entity));
  }
  return table;
}

TEST(TokenBlockerTest, FindsOverlappingRows) {
  const EntityTable left = MakeTable({{"digital camera x100", "sony"},
                                      {"wireless router r7", "netgear"}});
  const EntityTable right = MakeTable({{"camera x100 digital", "sony"},
                                       {"oak dining table", "ikea"}});
  const TokenBlocker blocker;
  const auto candidates = blocker.Candidates(left, right);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].left_row, 0u);
  EXPECT_EQ(candidates[0].right_row, 0u);
  EXPECT_GT(candidates[0].score, 0.5);
}

TEST(TokenBlockerTest, MinJaccardFilters) {
  const EntityTable left = MakeTable({{"alpha beta gamma delta", "x"}});
  const EntityTable right = MakeTable({{"alpha zz yy ww vv uu", "q"}});
  TokenBlockerOptions options;
  options.min_jaccard = 0.5;
  const TokenBlocker strict(options);
  EXPECT_TRUE(strict.Candidates(left, right).empty());
  options.min_jaccard = 0.05;
  const TokenBlocker loose(options);
  EXPECT_EQ(loose.Candidates(left, right).size(), 1u);
}

TEST(TokenBlockerTest, CapsCandidatesPerRow) {
  EntityTable left = MakeTable({{"shared token here", "b"}});
  EntityTable right;
  right.schema = left.schema;
  for (int i = 0; i < 20; ++i) {
    data::Entity entity;
    entity.values = {"shared token here", "b" + std::to_string(i)};
    right.rows.push_back(entity);
  }
  TokenBlockerOptions options;
  options.max_candidates_per_row = 5;
  options.max_token_frequency = 1.0;  // Disable stop-token pruning.
  const TokenBlocker blocker(options);
  EXPECT_EQ(blocker.Candidates(left, right).size(), 5u);
}

TEST(EmbeddingBlockerTest, RecoversTypoedRow) {
  // "dgital camera x100" shares embedding mass with the clean row even
  // though key tokens are typo'd.
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});
  const EntityTable left = MakeTable({{"dgital camer x100", "sony"}});
  const EntityTable right = MakeTable({{"digital camera x100", "sony"},
                                       {"completely unrelated row", "zzz"}});
  EmbeddingBlockerOptions options;
  options.k = 1;
  options.min_cosine = 0.3;
  const EmbeddingBlocker blocker(&encoder, options);
  const auto candidates = blocker.Candidates(left, right);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].right_row, 0u);
}

TEST(MergeCandidatesTest, UnionKeepsBestScore) {
  const std::vector<CandidatePair> a = {{0, 0, 0.5}, {0, 1, 0.4}};
  const std::vector<CandidatePair> b = {{0, 0, 0.7}, {1, 1, 0.9}};
  const auto merged = MergeCandidates(a, b);
  ASSERT_EQ(merged.size(), 3u);
  // (0,0) keeps the higher score.
  bool found = false;
  for (const auto& pair : merged) {
    if (pair.left_row == 0 && pair.right_row == 0) {
      EXPECT_DOUBLE_EQ(pair.score, 0.7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BuildCandidateDatasetTest, LabelsFromIdentity) {
  const EntityTable left = MakeTable({{"a", "x"}, {"b", "y"}});
  const EntityTable right = MakeTable({{"a2", "x"}, {"c", "z"}});
  const std::vector<CandidatePair> pairs = {{0, 0, 1.0}, {1, 1, 1.0}};
  const data::Dataset dataset = BuildCandidateDataset(
      left, right, pairs, {7, 8}, {7, 9}, "test");
  ASSERT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.records[0].label, 1);  // Identity 7 == 7.
  EXPECT_EQ(dataset.records[1].label, 0);  // 8 != 9.
  EXPECT_EQ(dataset.records[0].left.values[0], "a");
  EXPECT_EQ(dataset.records[0].right.values[0], "a2");
}

TEST(BlockingRecallTest, CountsSurvivingMatches) {
  // Identities: left {1, 2}, right {1, 2}: two true matches.
  const std::vector<size_t> left_identity = {1, 2};
  const std::vector<size_t> right_identity = {1, 2};
  EXPECT_DOUBLE_EQ(
      BlockingRecall({{0, 0, 1.0}}, left_identity, right_identity), 0.5);
  EXPECT_DOUBLE_EQ(
      BlockingRecall({{0, 0, 1.0}, {1, 1, 1.0}}, left_identity,
                     right_identity),
      1.0);
  EXPECT_DOUBLE_EQ(BlockingRecall({}, {5}, {6}), 1.0);  // No true matches.
}

TEST(BlockingIntegrationTest, HighRecallOnCorruptedCatalog) {
  Rng rng(4);
  const data::Schema schema = data::DomainSchema(data::Domain::kProduct);
  const auto catalog =
      data::GenerateCatalog(data::Domain::kProduct, 120, &rng);
  data::CorruptionProfile profile;
  EntityTable a{schema, {}}, b{schema, {}};
  std::vector<size_t> ids_a, ids_b;
  for (size_t i = 0; i < catalog.size(); ++i) {
    data::Entity base;
    base.values = catalog[i].values;
    a.rows.push_back(data::CorruptEntity(base, schema, profile, &rng));
    ids_a.push_back(i);
    b.rows.push_back(data::CorruptEntity(base, schema, profile, &rng));
    ids_b.push_back(i);
  }
  const TokenBlocker blocker;
  const auto candidates = blocker.Candidates(a, b);
  EXPECT_GT(BlockingRecall(candidates, ids_a, ids_b), 0.9);
  // And it prunes: far fewer candidates than the cross product.
  EXPECT_LT(candidates.size(), a.size() * b.size() / 5);
}

}  // namespace
}  // namespace wym::blocking
