#include <gtest/gtest.h>

#include "embedding/context_mixer.h"
#include "embedding/cooc_embedder.h"
#include "embedding/hash_embedder.h"
#include "embedding/semantic_encoder.h"
#include "embedding/siamese_calibrator.h"
#include "la/vector_ops.h"
#include "util/random.h"

namespace wym::embedding {
namespace {

TEST(HashEmbedderTest, UnitNormAndDeterministic) {
  const HashEmbedder embedder(40);
  const la::Vec a = embedder.Embed("camera");
  const la::Vec b = embedder.Embed("camera");
  EXPECT_EQ(a, b);
  EXPECT_NEAR(la::Norm(a), 1.0, 1e-5);
  EXPECT_TRUE(la::IsZero(embedder.Embed("")));
}

TEST(HashEmbedderTest, SimilarStringsAreClose) {
  const HashEmbedder embedder(40);
  const double near = la::Cosine(embedder.Embed("external"),
                                 embedder.Embed("externl"));
  const double far = la::Cosine(embedder.Embed("external"),
                                embedder.Embed("zebra"));
  EXPECT_GT(near, 0.35);
  EXPECT_LT(far, 0.3);
  EXPECT_GT(near, far);
}

TEST(HashEmbedderTest, IdenticalBeatsSimilar) {
  const HashEmbedder embedder(40);
  EXPECT_GT(la::Cosine(embedder.Embed("dslra200w"),
                       embedder.Embed("dslra200w")),
            la::Cosine(embedder.Embed("dslra200w"),
                       embedder.Embed("dslra300k")));
}

TEST(HashEmbedderTest, SeedChangesSpace) {
  const HashEmbedder a(40, 1);
  const HashEmbedder b(40, 2);
  EXPECT_NE(a.Embed("camera"), b.Embed("camera"));
}

TEST(CoocEmbedderTest, ContextualNeighborsAreClose) {
  // "sony" and "nikon" share contexts; "pizza" lives elsewhere.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 60; ++i) {
    corpus.push_back({"sony", "digital", "camera", "zoom"});
    corpus.push_back({"nikon", "digital", "camera", "lens"});
    corpus.push_back({"pizza", "cheese", "oven", "dough"});
  }
  CoocEmbedder::Options options;
  options.dim = 8;
  CoocEmbedder embedder(options);
  embedder.Fit(corpus);
  const double related =
      la::Cosine(embedder.Embed("sony"), embedder.Embed("nikon"));
  const double unrelated =
      la::Cosine(embedder.Embed("sony"), embedder.Embed("pizza"));
  EXPECT_GT(related, unrelated);
}

TEST(CoocEmbedderTest, OutOfVocabularyIsZero) {
  CoocEmbedder embedder;
  embedder.Fit({{"alpha", "beta"}, {"alpha", "beta"}});
  EXPECT_TRUE(la::IsZero(embedder.Embed("missing")));
}

TEST(CoocEmbedderTest, MinCountFiltersRareTokens) {
  CoocEmbedder::Options options;
  options.min_count = 3;
  CoocEmbedder embedder(options);
  embedder.Fit({{"common", "rare"}, {"common", "x"}, {"common", "y"}});
  EXPECT_TRUE(la::IsZero(embedder.Embed("rare")));
}

TEST(ContextMixerTest, SingleTokenUnchanged) {
  const ContextMixer mixer;
  const std::vector<la::Vec> base = {{1.0f, 0.0f}};
  EXPECT_EQ(mixer.Mix(base), base);
}

TEST(ContextMixerTest, OutputIsUnitNormAndContextDependent) {
  const ContextMixer mixer;
  const HashEmbedder embedder(24);
  const std::vector<la::Vec> context_a = {embedder.Embed("camera"),
                                          embedder.Embed("digital")};
  const std::vector<la::Vec> context_b = {embedder.Embed("camera"),
                                          embedder.Embed("lens")};
  const auto mixed_a = mixer.Mix(context_a);
  const auto mixed_b = mixer.Mix(context_b);
  EXPECT_NEAR(la::Norm(mixed_a[0]), 1.0, 1e-5);
  // Same token, different context -> different contextual vector (R4).
  EXPECT_LT(la::Cosine(mixed_a[0], mixed_b[0]), 0.9999);
  EXPECT_GT(la::Cosine(mixed_a[0], mixed_b[0]), 0.5);
}

TEST(ContextMixerTest, ZeroBlendIsIdentity) {
  ContextMixer::Options options;
  options.blend = 0.0;
  const ContextMixer mixer(options);
  const HashEmbedder embedder(16);
  const std::vector<la::Vec> base = {embedder.Embed("a"),
                                     embedder.Embed("b")};
  EXPECT_EQ(mixer.Mix(base), base);
}

TEST(SiameseCalibratorTest, IdentityBeforeFit) {
  const SiameseCalibrator calibrator;
  const la::Vec v = {0.5f, 0.5f};
  EXPECT_EQ(calibrator.Apply(v), v);
}

TEST(SiameseCalibratorTest, ReducesTrainingObjective) {
  // Matches should be pulled toward cosine 1, non-matches toward the
  // negative target (0.2): the calibrator must reduce its own objective
  // sum((cos - target)^2) on the training pairs.
  Rng rng(3);
  std::vector<std::pair<la::Vec, la::Vec>> pairs;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const bool match = i % 2 == 0;
    // Dim 0: identity evidence; dim 1: always-shared brand evidence.
    la::Vec a = {static_cast<float>(rng.Normal(1.0, 0.1)),
                 static_cast<float>(rng.Normal(1.0, 0.1))};
    la::Vec b = {static_cast<float>(rng.Normal(match ? 1.0 : -0.3, 0.1)),
                 static_cast<float>(rng.Normal(1.0, 0.1))};
    la::Normalize(&a);
    la::Normalize(&b);
    pairs.emplace_back(a, b);
    labels.push_back(match ? 1 : 0);
  }
  SiameseCalibratorOptions options;
  SiameseCalibrator calibrator(options);
  calibrator.Fit(pairs, labels);
  ASSERT_TRUE(calibrator.fitted());

  auto objective = [&](bool calibrated) {
    double loss = 0.0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      const double target =
          labels[i] == 1 ? 1.0 : options.negative_target;
      const double cos =
          calibrated ? la::Cosine(calibrator.Apply(pairs[i].first),
                                  calibrator.Apply(pairs[i].second))
                     : la::Cosine(pairs[i].first, pairs[i].second);
      loss += (cos - target) * (cos - target);
    }
    return loss;
  };
  EXPECT_LT(objective(true), objective(false));
}

TEST(SemanticEncoderTest, DimsConstantAcrossModes) {
  for (EncoderMode mode : {EncoderMode::kPretrained, EncoderMode::kFineTuned,
                           EncoderMode::kSiamese}) {
    SemanticEncoder::Options options;
    options.mode = mode;
    SemanticEncoder encoder(options);
    encoder.Fit({{"a", "b"}, {"a", "c"}});
    EXPECT_EQ(encoder.dim(),
              options.hash_dim + options.cooc_dim + options.numeric_dims);
    const auto vectors = encoder.EncodeTokens({"a", "b"});
    ASSERT_EQ(vectors.size(), 2u);
    EXPECT_EQ(vectors[0].size(), encoder.dim());
  }
}

TEST(SemanticEncoderTest, NumeracyChannelGradedSimilarity) {
  SemanticEncoder::Options options;
  options.mode = EncoderMode::kPretrained;
  SemanticEncoder encoder(options);
  encoder.Fit({});
  const double close = la::Cosine(encoder.EncodeTokenIsolated("1161.61"),
                                  encoder.EncodeTokenIsolated("1300.21"));
  const double far = la::Cosine(encoder.EncodeTokenIsolated("717"),
                                encoder.EncodeTokenIsolated("71"));
  EXPECT_GT(close, 0.6);
  EXPECT_GT(close, far);
}

TEST(SemanticEncoderTest, ExactNumberBeatsCloseNumber) {
  SemanticEncoder::Options options;
  options.mode = EncoderMode::kPretrained;
  SemanticEncoder encoder(options);
  encoder.Fit({});
  const la::Vec a = encoder.EncodeTokenIsolated("42166");
  EXPECT_GT(la::Cosine(a, encoder.EncodeTokenIsolated("42166")),
            la::Cosine(a, encoder.EncodeTokenIsolated("42199")));
}

TEST(SemanticEncoderTest, PoolTokensIsNormalizedMean) {
  const la::Vec pooled =
      SemanticEncoder::PoolTokens({{1.0f, 0.0f}, {0.0f, 1.0f}});
  EXPECT_NEAR(la::Norm(pooled), 1.0, 1e-5);
  EXPECT_NEAR(pooled[0], pooled[1], 1e-5);
  EXPECT_TRUE(SemanticEncoder::PoolTokens({}).empty());
}

TEST(SemanticEncoderTest, DeterministicAcrossInstances) {
  SemanticEncoder::Options options;
  SemanticEncoder a(options), b(options);
  const std::vector<std::vector<std::string>> corpus = {
      {"digital", "camera"}, {"digital", "lens"}};
  a.Fit(corpus);
  b.Fit(corpus);
  EXPECT_EQ(a.EncodeTokens({"digital", "camera"}),
            b.EncodeTokens({"digital", "camera"}));
}

TEST(SemanticEncoderTest, TokenCacheIsBoundedWithDeterministicEviction) {
  // Long-lived-process regression: pushing far more distinct tokens
  // than the memo capacity through the encoder must keep the cache at
  // its cap (evicting, not refusing new entries) and must not change
  // any encoding — cached vectors are derivable state.
  SemanticEncoder::Options options;
  SemanticEncoder encoder(options);
  encoder.Fit({{"digital", "camera"}});

  const auto first_before = encoder.EncodeTokens({"tok0"});
  const size_t kDistinct = (1u << 16) + 512;
  std::vector<std::string> batch;
  batch.reserve(64);
  for (size_t i = 0; i < kDistinct; i += 64) {
    batch.clear();
    for (size_t j = i; j < i + 64 && j < kDistinct; ++j) {
      batch.push_back("tok" + std::to_string(j));
    }
    (void)encoder.EncodeTokens(batch);
  }
  EXPECT_LE(encoder.token_cache_size(), size_t{1} << 16);
  EXPECT_GT(encoder.token_cache_evictions(), 0u);
  // "tok0" was evicted long ago; recomputing it after eviction gives
  // the identical vector.
  EXPECT_EQ(encoder.EncodeTokens({"tok0"}), first_before);

  // The eviction order is FIFO, so two encoders fed the same sequence
  // end with identical cache occupancy.
  SemanticEncoder other(options);
  other.Fit({{"digital", "camera"}});
  (void)other.EncodeTokens({"tok0"});
  for (size_t i = 0; i < kDistinct; i += 64) {
    batch.clear();
    for (size_t j = i; j < i + 64 && j < kDistinct; ++j) {
      batch.push_back("tok" + std::to_string(j));
    }
    (void)other.EncodeTokens(batch);
  }
  (void)other.EncodeTokens({"tok0"});
  EXPECT_EQ(other.token_cache_size(), encoder.token_cache_size());
  EXPECT_EQ(other.token_cache_evictions(), encoder.token_cache_evictions());
}

}  // namespace
}  // namespace wym::embedding
