// Tests of the deterministic parallel runtime: the ThreadPool work
// queue, the fixed-chunk ParallelFor contract (coverage, exceptions,
// nesting, thread-count-independent chunk structure), and the end-to-end
// determinism guarantee — batch predictions and explanations are
// bit-identical on a 1-thread and an 8-thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "la/kernels.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace wym {
namespace {

TEST(ThreadPoolTest, DrainsAllSubmittedTasksBeforeJoin) {
  std::atomic<int> counter{0};
  {
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // Destructor drains the queue and joins.
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SizeOneRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // No workers: Submit executes inline.
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // Immediately, on this thread.
}

TEST(ParallelForTest, GrainOneCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  util::ParallelFor(
      hits.size(), /*grain=*/1,
      [&](size_t begin, size_t end, size_t chunk) {
        EXPECT_EQ(begin, chunk);  // grain=1: chunk index == element index.
        EXPECT_EQ(end, begin + 1);
        hits[begin].fetch_add(1);
      },
      &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsNeverInvokes) {
  util::ThreadPool pool(4);
  bool invoked = false;
  util::ParallelFor(
      0, 16, [&](size_t, size_t, size_t) { invoked = true; }, &pool);
  EXPECT_FALSE(invoked);
}

TEST(ParallelForTest, NumChunksMatchesChunkStructure) {
  EXPECT_EQ(util::NumChunks(0, 8), 0u);
  EXPECT_EQ(util::NumChunks(1, 8), 1u);
  EXPECT_EQ(util::NumChunks(8, 8), 1u);
  EXPECT_EQ(util::NumChunks(9, 8), 2u);
  EXPECT_EQ(util::NumChunks(100, 0), 100u);  // grain clamps to 1.
}

TEST(ParallelForTest, PropagatesException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      util::ParallelFor(
          100, 10,
          [](size_t begin, size_t end, size_t) {
            if (begin <= 42 && 42 < end) throw std::runtime_error("boom");
          },
          &pool),
      std::runtime_error);
}

TEST(ParallelForTest, RethrowsLowestChunkException) {
  util::ThreadPool pool(4);
  try {
    util::ParallelFor(
        100, 10,
        [](size_t, size_t, size_t chunk) {
          if (chunk == 3 || chunk == 7) {
            throw std::runtime_error("chunk " + std::to_string(chunk));
          }
        },
        &pool);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  util::ParallelFor(
      8, 1,
      [&](size_t, size_t, size_t) {
        // A nested loop on the same (saturated) pool must not deadlock.
        util::ParallelFor(
            100, 10, [&](size_t b, size_t e, size_t) {
              counter.fetch_add(static_cast<int>(e - b));
            },
            &pool);
      },
      &pool);
  EXPECT_EQ(counter.load(), 800);
}

TEST(ParallelForTest, ChunkStructureIndependentOfThreadCount) {
  using Chunk = std::tuple<size_t, size_t, size_t>;
  auto chunks_with = [](util::ThreadPool* pool) {
    std::vector<Chunk> chunks(util::NumChunks(103, 8));
    util::ParallelFor(
        103, 8,
        [&](size_t begin, size_t end, size_t chunk) {
          chunks[chunk] = {begin, end, chunk};
        },
        pool);
    return chunks;
  };
  util::ThreadPool one(1), eight(8);
  EXPECT_EQ(chunks_with(&one), chunks_with(&eight));
}

// --- End-to-end determinism of the batch inference APIs ---

class BatchDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ =
        std::make_unique<data::Dataset>(data::GenerateById("S-FZ", 42, 0.25));
    split_ = std::make_unique<data::Split>(data::DefaultSplit(*dataset_, 42));
    model_ = std::make_unique<core::WymModel>();
    model_->Fit(split_->train, split_->validation);
  }
  static void TearDownTestSuite() {
    model_.reset();
    split_.reset();
    dataset_.reset();
  }

  static std::unique_ptr<data::Dataset> dataset_;
  static std::unique_ptr<data::Split> split_;
  static std::unique_ptr<core::WymModel> model_;
};

std::unique_ptr<data::Dataset> BatchDeterminismTest::dataset_;
std::unique_ptr<data::Split> BatchDeterminismTest::split_;
std::unique_ptr<core::WymModel> BatchDeterminismTest::model_;

TEST_F(BatchDeterminismTest, PredictProbaBatchBitIdenticalAcrossThreadCounts) {
  util::ThreadPool one(1), eight(8);
  const std::vector<double> p1 = model_->PredictProbaBatch(split_->test, &one);
  const std::vector<double> p8 =
      model_->PredictProbaBatch(split_->test, &eight);
  ASSERT_EQ(p1.size(), split_->test.size());
  ASSERT_EQ(p1.size(), p8.size());
  // Bit-identical, not approximately equal.
  EXPECT_EQ(std::memcmp(p1.data(), p8.data(), p1.size() * sizeof(double)), 0);

  // And identical to the sequential per-record API.
  for (size_t i = 0; i < p1.size(); ++i) {
    const double sequential = model_->PredictProba(split_->test.records[i]);
    EXPECT_EQ(std::memcmp(&p1[i], &sequential, sizeof(double)), 0);
  }
}

TEST_F(BatchDeterminismTest, ExplainBatchBitIdenticalAcrossThreadCounts) {
  util::ThreadPool one(1), eight(8);
  const std::vector<core::Explanation> e1 =
      model_->ExplainBatch(split_->test, &one);
  const std::vector<core::Explanation> e8 =
      model_->ExplainBatch(split_->test, &eight);
  ASSERT_EQ(e1.size(), split_->test.size());
  ASSERT_EQ(e1.size(), e8.size());
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].prediction, e8[i].prediction);
    EXPECT_EQ(std::memcmp(&e1[i].probability, &e8[i].probability,
                          sizeof(double)),
              0);
    ASSERT_EQ(e1[i].units.size(), e8[i].units.size());
    for (size_t u = 0; u < e1[i].units.size(); ++u) {
      EXPECT_EQ(std::memcmp(&e1[i].units[u].relevance,
                            &e8[i].units[u].relevance, sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&e1[i].units[u].impact, &e8[i].units[u].impact,
                            sizeof(double)),
                0);
      EXPECT_EQ(e1[i].units[u].unit.left.token, e8[i].units[u].unit.left.token);
      EXPECT_EQ(e1[i].units[u].unit.right.token,
                e8[i].units[u].unit.right.token);
    }
  }
}

TEST_F(BatchDeterminismTest,
       PredictProbaBatchBitIdenticalAcrossSimdLevelsAndThreadCounts) {
  // The determinism guarantee spans both axes: every {SIMD level} x
  // {thread count} combination must produce the same bits.
  using la::kernels::SimdLevel;
  const SimdLevel ambient = la::kernels::ActiveSimdLevel();
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (la::kernels::DetectedSimdLevel() != SimdLevel::kScalar) {
    levels.push_back(la::kernels::DetectedSimdLevel());
  }

  util::ThreadPool one(1), eight(8);
  std::vector<std::vector<double>> runs;
  for (SimdLevel level : levels) {
    la::kernels::SetSimdLevel(level);
    runs.push_back(model_->PredictProbaBatch(split_->test, &one));
    runs.push_back(model_->PredictProbaBatch(split_->test, &eight));
  }
  la::kernels::SetSimdLevel(ambient);

  ASSERT_EQ(runs.front().size(), split_->test.size());
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs.front().size());
    EXPECT_EQ(std::memcmp(runs[r].data(), runs.front().data(),
                          runs.front().size() * sizeof(double)),
              0)
        << "run " << r << " diverged from the scalar 1-thread reference";
  }
}

}  // namespace
}  // namespace wym
