#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/bounded_cache.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"

namespace wym {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::IoError("disk on fire");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIoError);
  EXPECT_EQ(status.ToString(), "IoError: disk on fire");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(7);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.Index(5)];
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(StatsTest, MeanMedianStd) {
  const std::vector<double> values = {1, 2, 3, 4, 10};
  EXPECT_DOUBLE_EQ(stats::Mean(values), 4.0);
  EXPECT_DOUBLE_EQ(stats::Median(values), 3.0);
  EXPECT_NEAR(stats::StdDev(values), 3.1623, 1e-3);  // Population SD.
  EXPECT_DOUBLE_EQ(stats::Min(values), 1.0);
  EXPECT_DOUBLE_EQ(stats::Max(values), 10.0);
  EXPECT_DOUBLE_EQ(stats::Sum(values), 20.0);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(stats::Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::Median({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::StdDev({}), 0.0);
}

TEST(StatsTest, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(stats::Median({4, 1, 3, 2}), 2.5);
}

TEST(StatsTest, PearsonPerfectPositive) {
  EXPECT_NEAR(stats::Pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectNegative) {
  EXPECT_NEAR(stats::Pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(stats::Pearson({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(StatsTest, FleissKappaPerfectAgreement) {
  // 3 raters, all agree per subject.
  const std::vector<std::vector<int>> ratings = {{3, 0}, {0, 3}, {3, 0}};
  EXPECT_NEAR(stats::FleissKappa(ratings), 1.0, 1e-9);
}

TEST(StatsTest, FleissKappaKnownValue) {
  // Classic Wikipedia example (14 raters, 10 subjects, 5 categories)
  // has kappa ~= 0.210.
  const std::vector<std::vector<int>> ratings = {
      {0, 0, 0, 0, 14}, {0, 2, 6, 4, 2}, {0, 0, 3, 5, 6},
      {0, 3, 9, 2, 0},  {2, 2, 8, 1, 1}, {7, 7, 0, 0, 0},
      {3, 2, 6, 3, 0},  {2, 5, 3, 2, 2}, {6, 5, 2, 1, 0},
      {0, 2, 2, 3, 7}};
  EXPECT_NEAR(stats::FleissKappa(ratings), 0.210, 0.005);
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(strings::ToLower("MiXeD Case 42"), "mixed case 42");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = strings::Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const auto parts = strings::SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(strings::Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(strings::Trim("  hi  "), "hi");
  EXPECT_EQ(strings::Trim("\t\n"), "");
}

TEST(StringUtilTest, Predicates) {
  EXPECT_TRUE(strings::StartsWith("left_name", "left_"));
  EXPECT_FALSE(strings::StartsWith("lef", "left_"));
  EXPECT_TRUE(strings::EndsWith("file.csv", ".csv"));
  EXPECT_TRUE(strings::IsNumeric("12345"));
  EXPECT_FALSE(strings::IsNumeric("12a45"));
  EXPECT_FALSE(strings::IsNumeric(""));
}

TEST(StringUtilTest, IsAlphanumericCode) {
  EXPECT_TRUE(strings::IsAlphanumericCode("dslra200w"));
  EXPECT_TRUE(strings::IsAlphanumericCode("39400416a"));
  EXPECT_FALSE(strings::IsAlphanumericCode("camera"));   // No digits.
  EXPECT_FALSE(strings::IsAlphanumericCode("5811"));     // No letters.
  EXPECT_FALSE(strings::IsAlphanumericCode("a1"));       // Too short.
  EXPECT_FALSE(strings::IsAlphanumericCode("a-1b"));     // Punctuation.
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(strings::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(strings::FormatDouble(2.0, 0), "2");
}

TEST(FifoCacheTest, LookupInsertAndSize) {
  util::FifoCache<std::string, int> cache(4);
  int value = 0;
  EXPECT_FALSE(cache.Lookup("a", &value));
  cache.Insert("a", 1);
  ASSERT_TRUE(cache.Lookup("a", &value));
  EXPECT_EQ(value, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.capacity(), 4u);
}

TEST(FifoCacheTest, EvictsOldestFirstDeterministically) {
  util::FifoCache<std::string, int> cache(3);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Insert("c", 3);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Insert("d", 4);  // Evicts "a", the oldest.
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  int value = 0;
  EXPECT_FALSE(cache.Lookup("a", &value));
  EXPECT_TRUE(cache.Lookup("b", &value));
  EXPECT_TRUE(cache.Lookup("c", &value));
  EXPECT_TRUE(cache.Lookup("d", &value));
}

TEST(FifoCacheTest, ReinsertKeepsOriginalValueAndAge) {
  util::FifoCache<std::string, int> cache(2);
  cache.Insert("a", 1);
  cache.Insert("a", 99);  // No-op: existing key keeps value and age.
  int value = 0;
  ASSERT_TRUE(cache.Lookup("a", &value));
  EXPECT_EQ(value, 1);
  cache.Insert("b", 2);
  cache.Insert("c", 3);  // "a" is still the oldest entry and goes first.
  EXPECT_FALSE(cache.Lookup("a", &value));
  EXPECT_TRUE(cache.Lookup("b", &value));
}

TEST(FifoCacheTest, ZeroCapacityDisablesCaching) {
  util::FifoCache<std::string, int> cache(0);
  cache.Insert("a", 1);
  int value = 0;
  EXPECT_FALSE(cache.Lookup("a", &value));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FifoCacheTest, ClearResetsEntriesButKeepsEvictionCount) {
  util::FifoCache<std::string, int> cache(2);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Insert("c", 3);
  EXPECT_EQ(cache.evictions(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
  int value = 0;
  EXPECT_FALSE(cache.Lookup("b", &value));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter table({"id", "x", "y"});
  table.AddRow("row", {0.5, 0.25}, 2);
  EXPECT_NE(table.ToString().find("0.50"), std::string::npos);
}

}  // namespace
}  // namespace wym
