// Tests for the analysis extensions: label-preserving augmentation and
// global (dataset-level) attribution.

#include <gtest/gtest.h>

#include "core/wym.h"
#include "data/augmentation.h"
#include "data/statistics.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "explain/counterfactual.h"
#include "explain/global.h"
#include "ml/metrics.h"
#include "text/tokenizer.h"

namespace wym {
namespace {

TEST(AugmentationTest, SizeAndSchema) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 5, 0.1);
  data::AugmentationOptions options;
  options.copies_per_record = 2;
  const data::Dataset augmented = data::AugmentDataset(dataset, options);
  EXPECT_EQ(augmented.size(), dataset.size() * 3);
  EXPECT_EQ(augmented.schema, dataset.schema);
  // Originals come first, unchanged.
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(augmented.records[i].left.values,
              dataset.records[i].left.values);
  }
}

TEST(AugmentationTest, PreservesLabelsAndBalance) {
  const data::Dataset dataset = data::GenerateById("S-IA", 5, 0.3);
  const data::Dataset augmented = data::AugmentDataset(dataset);
  EXPECT_NEAR(augmented.MatchPercent(), dataset.MatchPercent(), 1e-9);
}

TEST(AugmentationTest, IdentityAttributeKeepsHalfItsTokens) {
  data::Dataset dataset;
  dataset.schema = {{"name"}};
  data::EmRecord record;
  record.left.values = {"alpha beta gamma delta epsilon zeta"};
  record.right.values = {"alpha beta gamma delta epsilon zeta"};
  record.label = 1;
  dataset.records.push_back(record);

  data::AugmentationOptions options;
  options.copies_per_record = 50;
  options.token_dropout = 0.9;  // Aggressive.
  const data::Dataset augmented = data::AugmentDataset(dataset, options);
  const text::Tokenizer tokenizer;
  for (size_t i = 1; i < augmented.size(); ++i) {
    EXPECT_GE(tokenizer.Tokenize(augmented.records[i].left.values[0]).size(),
              3u);
  }
}

TEST(AugmentationTest, Deterministic) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 9, 0.1);
  const data::Dataset a = data::AugmentDataset(dataset);
  const data::Dataset b = data::AugmentDataset(dataset);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records[i].left.values, b.records[i].left.values);
  }
}

TEST(AugmentationTest, HelpsLowDataRegime) {
  // The paper's Fig. 5 low-data regime: with a tiny training slice of a
  // hard dataset, augmentation should not hurt and typically helps.
  const data::Dataset dataset = data::GenerateById("S-AG", 42, 0.6);
  const data::Split split = data::DefaultSplit(dataset, 42);
  data::Dataset small_train = data::Subset(
      split.train, [&] {
        std::vector<size_t> idx;
        for (size_t i = 0; i < 150 && i < split.train.size(); ++i) {
          idx.push_back(i);
        }
        return idx;
      }(), "/small");

  core::WymModel plain;
  plain.Fit(small_train, split.validation);
  const double f1_plain = ml::F1Score(split.test.Labels(),
                                      plain.PredictDataset(split.test));

  data::AugmentationOptions options;
  options.copies_per_record = 2;
  core::WymModel augmented_model;
  augmented_model.Fit(data::AugmentDataset(small_train, options),
                      split.validation);
  const double f1_augmented = ml::F1Score(
      split.test.Labels(), augmented_model.PredictDataset(split.test));

  EXPECT_GT(f1_augmented, f1_plain - 0.1);  // Never catastrophically worse.
}

TEST(GlobalAttributionTest, AggregatesAcrossRecords) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.3);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  const explain::GlobalAttribution report =
      explain::ComputeGlobalAttribution(model, split.test, 5);
  EXPECT_EQ(report.records_analyzed, split.test.size());
  ASSERT_EQ(report.attributes.size(), dataset.schema.size());
  size_t total_units = 0;
  for (const auto& influence : report.attributes) {
    total_units += influence.unit_count;
    EXPECT_GE(influence.mean_absolute_impact, 0.0);
  }
  EXPECT_GT(total_units, split.test.size());  // Several units per record.

  // Recurring unit lists respect their sign contract and the top_k cap.
  EXPECT_LE(report.top_match_units.size(), 5u);
  EXPECT_LE(report.top_non_match_units.size(), 5u);
  for (const auto& unit : report.top_match_units) {
    EXPECT_GT(unit.mean_impact, 0.0);
    EXPECT_GE(unit.occurrences, 2u);
  }
  for (const auto& unit : report.top_non_match_units) {
    EXPECT_LT(unit.mean_impact, 0.0);
  }
}

TEST(GlobalAttributionTest, IdentityAttributeDominates) {
  // The restaurant name carries the identity: its mean |impact| should
  // top the city/type attributes.
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.3);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel model;
  model.Fit(split.train, split.validation);
  const explain::GlobalAttribution report =
      explain::ComputeGlobalAttribution(model, split.test);
  // Attribute 0 is "name".
  EXPECT_GT(report.attributes[0].mean_absolute_impact * 1.5,
            report.attributes[4].mean_absolute_impact);
}

TEST(GlobalAttributionTest, RenderContainsAttributeNames) {
  const data::Dataset dataset = data::GenerateById("S-BR", 3, 0.4);
  const data::Split split = data::DefaultSplit(dataset, 3);
  core::WymModel model;
  model.Fit(split.train, split.validation);
  const explain::GlobalAttribution report =
      explain::ComputeGlobalAttribution(model, split.test);
  const std::string text =
      explain::RenderGlobalAttribution(report, dataset.schema);
  EXPECT_NE(text.find("beer_name"), std::string::npos);
  EXPECT_NE(text.find("global attribution"), std::string::npos);
}


TEST(CounterfactualTest, FlipsConfidentPredictions) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.3);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  size_t attempted = 0, found = 0;
  for (const auto& record : split.test.records) {
    const core::Explanation explanation = model.Explain(record);
    if (explanation.units.size() < 3) continue;
    ++attempted;
    const explain::Counterfactual cf =
        explain::FindCounterfactual(model, explanation);
    if (cf.found) {
      ++found;
      EXPECT_NE(cf.flipped_prediction, explanation.prediction);
      EXPECT_FALSE(cf.removed_units.empty());
      EXPECT_LE(cf.removed_units.size(), 8u);
    } else {
      EXPECT_TRUE(cf.removed_units.empty());
    }
    if (attempted == 30) break;
  }
  ASSERT_GT(attempted, 10u);
  // Most confident predictions flip within the 8-unit budget.
  EXPECT_GT(static_cast<double>(found) / attempted, 0.5);
}

TEST(CounterfactualTest, EmptyExplanationIsHandled) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 11, 0.15);
  const data::Split split = data::DefaultSplit(dataset, 11);
  core::WymModel model;
  model.Fit(split.train, split.validation);
  core::Explanation empty;
  const explain::Counterfactual cf =
      explain::FindCounterfactual(model, empty);
  EXPECT_FALSE(cf.found);
}

TEST(ProfileTest, ComputesMissingAndOverlap) {
  data::Dataset dataset;
  dataset.name = "profile";
  dataset.schema = {{"name", "brand"}};
  auto add = [&](const char* ln, const char* lb, const char* rn,
                 const char* rb, int label) {
    data::EmRecord record;
    record.left.values = {ln, lb};
    record.right.values = {rn, rb};
    record.label = label;
    dataset.records.push_back(record);
  };
  add("digital camera", "sony", "digital camera", "sony", 1);
  add("digital camera", "", "oak table", "ikea", 0);

  const data::DatasetProfile profile = data::ProfileDataset(dataset);
  EXPECT_EQ(profile.records, 2u);
  EXPECT_EQ(profile.matches, 1u);
  ASSERT_EQ(profile.attributes.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.attributes[0].missing_rate, 0.0);
  EXPECT_DOUBLE_EQ(profile.attributes[1].missing_rate, 0.5);
  EXPECT_DOUBLE_EQ(profile.attributes[0].match_overlap, 1.0);
  EXPECT_DOUBLE_EQ(profile.attributes[0].non_match_overlap, 0.0);
  EXPECT_DOUBLE_EQ(profile.attributes[0].overlap_gap, 1.0);

  const std::string text = data::RenderProfile(profile);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("2 records"), std::string::npos);
}

TEST(ProfileTest, SignalGapOrdersAttributesOnBenchmark) {
  // The identity attribute must show a larger match/non-match overlap gap
  // than the price attribute on the product benchmark.
  const data::DatasetProfile profile =
      data::ProfileDataset(data::GenerateById("S-WA", 42, 0.5));
  EXPECT_GT(profile.attributes[0].overlap_gap,
            profile.attributes[2].overlap_gap);
}

}  // namespace
}  // namespace wym
