// End-to-end robustness suite for the persistence stack: a trained
// model is saved once, then its file is subjected to hundreds of
// deterministic faults — truncations at stratified offsets, single-bit
// flips across the whole file, mid-write failures, ENOSPC, simulated
// crashes — via the wym::io::FaultInjector seam. The contract under
// test (DESIGN.md "Failure model & file-format v2"):
//
//   - Load of a damaged file ALWAYS returns Corruption/IoError. It
//     never aborts, never hangs, never returns OK on damaged bytes.
//   - A failed or crashed save never clobbers the previous good model.
//   - Legacy v1 files migrate to v2 with byte-identical predictions.
//
// Run under scripts/check.sh's asan-ubsan configuration this doubles as
// a memory-safety sweep of every decode error path.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/csv.h"
#include "data/split.h"
#include "obs/metrics.h"
#include "util/framed_file.h"
#include "util/io.h"
#include "util/status.h"

namespace wym {
namespace {

/// The shared fixture: one small trained model (training dominates the
/// runtime; every fault case reuses the same trained pipeline).
struct Suite {
  data::Dataset dataset;
  data::Split split;
  core::WymModel model;
  std::string path;
  std::string clean_bytes;
  std::vector<double> clean_probas;
};

class FaultInjectionTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto s = std::make_unique<Suite>();
    s->dataset = data::GenerateById("S-FZ", 42, 0.3);
    s->split = data::DefaultSplit(s->dataset, 42);
    s->model.Fit(s->split.train, s->split.validation);

    // Per-process path: ctest runs each test of this suite as its own
    // process, possibly in parallel — a shared path would race the
    // saves (and their shared ".tmp" staging file) across processes.
    s->path = testing::TempDir() + "/wym_fault_model." +
              std::to_string(::getpid()) + ".wym";
    if (!s->model.SaveToFile(s->path).ok()) return;
    if (!io::ReadFileToString(s->path, &s->clean_bytes).ok()) return;
    if (s->clean_bytes.size() <= 100) return;
    s->clean_probas = s->model.PredictProbaBatch(s->split.test);
    suite_ = std::move(s);
  }

  static void TearDownTestSuite() {
    if (suite_ != nullptr) std::remove(suite_->path.c_str());
    suite_.reset();
  }

  void SetUp() override {
    ASSERT_NE(suite_, nullptr) << "shared fixture failed to build";
  }

  /// A load failure must be a *reported* failure of the right class.
  static void ExpectDamageDetected(const Status& status,
                                   const std::string& what) {
    EXPECT_FALSE(status.ok()) << what << ": damaged file loaded OK";
    EXPECT_TRUE(status.code() == Status::Code::kCorruption ||
                status.code() == Status::Code::kIoError)
        << what << ": unexpected status " << status.ToString();
  }

  static std::unique_ptr<Suite> suite_;
};

std::unique_ptr<Suite> FaultInjectionTest::suite_;

// ---------------------------------------------------------------------
// Corruption sweeps (>= 200 mutations total across the two tests)
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, TruncationSweepAlwaysDetected) {
  const size_t size = suite_->clean_bytes.size();
  // Stratified truncation points: every boundary-ish prefix plus 110
  // evenly spaced interior cuts — header, every frame, the trailer.
  std::vector<size_t> cuts = {0, 1, 2, 3, 4, 5, size - 1, size - 2};
  for (size_t i = 0; i < 110; ++i) cuts.push_back(1 + i * (size - 2) / 110);

  int swept = 0;
  for (const size_t cut : cuts) {
    io::FaultInjector injector;
    injector.ShortRead(cut);
    io::ScopedFaultInjector scope(&injector);
    const auto loaded = core::WymModel::LoadFromFile(suite_->path);
    ExpectDamageDetected(loaded.status(),
                         "truncated to " + std::to_string(cut) + " bytes");
    EXPECT_EQ(injector.faults_fired(), 1);
    ++swept;
  }
  EXPECT_GE(swept, 100);
}

TEST_F(FaultInjectionTest, BitFlipSweepAlwaysDetected) {
  const size_t bits = suite_->clean_bytes.size() * 8;
  int swept = 0;
  // 120 single-bit flips evenly spaced over the file: magic, version,
  // frame headers, payloads, CRC footers, trailer — every region.
  for (size_t i = 0; i < 120; ++i) {
    const size_t bit = i * (bits - 1) / 119;
    io::FaultInjector injector;
    injector.FlipBit(bit);
    io::ScopedFaultInjector scope(&injector);
    const auto loaded = core::WymModel::LoadFromFile(suite_->path);
    ExpectDamageDetected(loaded.status(),
                         "bit " + std::to_string(bit) + " flipped");
    ++swept;
  }
  EXPECT_GE(swept, 100);
}

TEST_F(FaultInjectionTest, CorruptFrameErrorNamesTheSection) {
  // Flip a payload bit inside the encoder frame specifically.
  const size_t frame_at = suite_->clean_bytes.find("FRAME encoder ");
  ASSERT_NE(frame_at, std::string::npos);
  const size_t payload_at = suite_->clean_bytes.find('\n', frame_at) + 10;
  ASSERT_LT(payload_at, suite_->clean_bytes.size());

  io::FaultInjector injector;
  injector.FlipBit(payload_at * 8);
  io::ScopedFaultInjector scope(&injector);
  const auto loaded = core::WymModel::LoadFromFile(suite_->path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  EXPECT_NE(loaded.status().message().find("encoder"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(FaultInjectionTest, VerifyFileAgreesWithLoadOnDamage) {
  ASSERT_TRUE(core::WymModel::VerifyFile(suite_->path).ok());
  for (const size_t bit : {7u, 1000u, 20000u}) {
    if (bit >= suite_->clean_bytes.size() * 8) continue;
    io::FaultInjector injector;
    injector.FlipBit(bit);
    io::ScopedFaultInjector scope(&injector);
    std::string summary;
    const Status status = core::WymModel::VerifyFile(suite_->path, &summary);
    ExpectDamageDetected(status, "verify with bit " + std::to_string(bit));
  }
}

// ---------------------------------------------------------------------
// Atomic save: a failed write never clobbers the previous model
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, CrashMidSaveLeavesPreviousModelLoadable) {
  const std::string victim = testing::TempDir() + "/wym_fault_victim.wym";
  ASSERT_TRUE(suite_->model.SaveToFile(victim).ok());

  // Simulated kill -9 after 1000 bytes of the rewrite: no rename, the
  // partial temp file is abandoned on disk.
  io::FaultInjector injector;
  injector.CrashAt(1000);
  {
    io::ScopedFaultInjector scope(&injector);
    EXPECT_EQ(suite_->model.SaveToFile(victim).code(), Status::Code::kIoError);
  }
  EXPECT_EQ(injector.faults_fired(), 1);

  auto survivor = core::WymModel::LoadFromFile(victim);
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
  const std::vector<double> probas =
      survivor.value().PredictProbaBatch(suite_->split.test);
  ASSERT_EQ(probas.size(), suite_->clean_probas.size());
  for (size_t i = 0; i < probas.size(); ++i) {
    EXPECT_DOUBLE_EQ(probas[i], suite_->clean_probas[i]);
  }
  std::remove((victim + ".tmp").c_str());
  std::remove(victim.c_str());
}

TEST_F(FaultInjectionTest, FailedAndEnospcSavesLeaveNoDebris) {
  const std::string victim = testing::TempDir() + "/wym_fault_debris.wym";
  ASSERT_TRUE(suite_->model.SaveToFile(victim).ok());

  io::FaultInjector injector;
  injector.FailWriteAt(64).Enospc(128);
  {
    io::ScopedFaultInjector scope(&injector);
    EXPECT_EQ(suite_->model.SaveToFile(victim).code(), Status::Code::kIoError);
    const Status enospc = suite_->model.SaveToFile(victim);
    EXPECT_EQ(enospc.code(), Status::Code::kIoError);
    EXPECT_NE(enospc.message().find("space"), std::string::npos)
        << enospc.ToString();
  }
  EXPECT_EQ(injector.faults_fired(), 2);

  // Both failures cleaned up their temp file and left the target alone.
  std::string tmp_probe;
  EXPECT_FALSE(io::ReadFileToString(victim + ".tmp", &tmp_probe).ok());
  auto survivor = core::WymModel::LoadFromFile(victim);
  EXPECT_TRUE(survivor.ok()) << survivor.status().ToString();
  std::remove(victim.c_str());
}

// ---------------------------------------------------------------------
// Legacy v1 -> v2 migration
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, V1FileMigratesWithIdenticalPredictions) {
  const std::string v1_path = testing::TempDir() + "/wym_fault_legacy.wym";
  ASSERT_TRUE(suite_->model.SaveToFileV1(v1_path).ok());

  // Loading the unframed v1 stream still works (deprecation note on
  // stderr) and reproduces the predictions bit for bit.
  auto migrated = core::WymModel::LoadFromFile(v1_path);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  const std::vector<double> v1_probas =
      migrated.value().PredictProbaBatch(suite_->split.test);
  ASSERT_EQ(v1_probas.size(), suite_->clean_probas.size());
  for (size_t i = 0; i < v1_probas.size(); ++i) {
    EXPECT_DOUBLE_EQ(v1_probas[i], suite_->clean_probas[i]);
  }

  // Re-saving the migrated model upgrades it to the framed v2 format...
  const std::string v2_path = testing::TempDir() + "/wym_fault_migrated.wym";
  ASSERT_TRUE(migrated.value().SaveToFile(v2_path).ok());
  std::string v2_bytes;
  ASSERT_TRUE(io::ReadFileToString(v2_path, &v2_bytes).ok());
  EXPECT_TRUE(io::LooksFramed(v2_bytes, "WYM2"));

  // ...again with byte-identical predictions.
  auto upgraded = core::WymModel::LoadFromFile(v2_path);
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  const std::vector<double> v2_probas =
      upgraded.value().PredictProbaBatch(suite_->split.test);
  for (size_t i = 0; i < v2_probas.size(); ++i) {
    EXPECT_DOUBLE_EQ(v2_probas[i], suite_->clean_probas[i]);
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST_F(FaultInjectionTest, V1FileVerifiesVacuouslyWithUpgradeNote) {
  const std::string v1_path = testing::TempDir() + "/wym_fault_v1v.wym";
  ASSERT_TRUE(suite_->model.SaveToFileV1(v1_path).ok());
  std::string summary;
  ASSERT_TRUE(core::WymModel::VerifyFile(v1_path, &summary).ok());
  EXPECT_NE(summary.find("legacy"), std::string::npos) << summary;
  std::remove(v1_path.c_str());
}

// ---------------------------------------------------------------------
// CSV reader under injected faults
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, TruncatedCsvReadIsReportedNotCrashed) {
  const std::string csv_path = testing::TempDir() + "/wym_fault_data.csv";
  ASSERT_TRUE(data::WriteDatasetCsv(suite_->split.test, csv_path).ok());
  std::string csv_bytes;
  ASSERT_TRUE(io::ReadFileToString(csv_path, &csv_bytes).ok());

  // Cut mid-row (not at a line boundary): the torn last row must be
  // reported as a parse failure with file:line, not silently dropped.
  const size_t last_newline = csv_bytes.find_last_of('\n', csv_bytes.size() - 2);
  ASSERT_NE(last_newline, std::string::npos);
  io::FaultInjector injector;
  injector.ShortRead(last_newline + 3);
  io::ScopedFaultInjector scope(&injector);
  const auto torn = data::ReadDatasetCsv(csv_path, "test.csv");
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), Status::Code::kCorruption);
  EXPECT_NE(torn.status().message().find("test.csv:"), std::string::npos)
      << torn.status().ToString();
  std::remove(csv_path.c_str());
}

// ---------------------------------------------------------------------
// Batch-prediction quarantine (graceful degradation)
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, DegenerateRecordsAreQuarantinedNotFatal) {
  // A record with empty descriptions tokenizes to zero tokens on both
  // sides — unexplainable, and a guaranteed abort in the scorer if it
  // ever reached the pipeline.
  data::Dataset poisoned = suite_->split.test;
  const size_t width = poisoned.schema.size();
  data::EmRecord degenerate;
  degenerate.label = 0;
  degenerate.left.values.assign(width, "");
  degenerate.right.values.assign(width, "");
  poisoned.records.insert(poisoned.records.begin() + 1, degenerate);

  core::PredictionReport report;
  const std::vector<double> probas =
      suite_->model.PredictProbaBatch(poisoned, &report);
  ASSERT_EQ(probas.size(), poisoned.size());
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].index, 1u);
  EXPECT_NE(report.quarantined[0].reason.find("zero tokens"),
            std::string::npos);
  EXPECT_EQ(report.predicted, poisoned.size() - 1);
  EXPECT_FALSE(report.clean());

  // The quarantined slot gets the non-match fallback; every healthy
  // record predicts exactly as it does without the poison pill.
  EXPECT_EQ(probas[1], 0.0);
  EXPECT_DOUBLE_EQ(probas[0], suite_->clean_probas[0]);
  for (size_t i = 2; i < probas.size(); ++i) {
    EXPECT_DOUBLE_EQ(probas[i], suite_->clean_probas[i - 1]);
  }

  // ExplainBatch quarantines the same record with an empty explanation.
  core::PredictionReport explain_report;
  const std::vector<core::Explanation> explanations =
      suite_->model.ExplainBatch(poisoned, &explain_report);
  ASSERT_EQ(explanations.size(), poisoned.size());
  ASSERT_EQ(explain_report.quarantined.size(), 1u);
  EXPECT_TRUE(explanations[1].units.empty());
  EXPECT_EQ(explanations[1].probability, 0.0);
  EXPECT_EQ(explanations[1].prediction, 0);
}

// ---------------------------------------------------------------------
// Failure paths feed the obs metrics registry (DESIGN.md
// "Observability"): every detected fault leaves an audit trail in a
// counter, so production runs can alarm on nonzero deltas.
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, CorruptionLoadIncrementsCounter) {
  obs::Counter& corruption =
      obs::Registry::Global().GetCounter("io.corruption_detected");
  const std::uint64_t before = corruption.Value();

  io::FaultInjector injector;
  injector.FlipBit(suite_->clean_bytes.size() * 4);  // Mid-file payload.
  io::ScopedFaultInjector scope(&injector);
  const auto loaded = core::WymModel::LoadFromFile(suite_->path);
  ASSERT_FALSE(loaded.ok());

  EXPECT_GT(corruption.Value(), before)
      << "corrupted load left io.corruption_detected untouched";
}

TEST_F(FaultInjectionTest, CsvQuarantineIncrementsCounter) {
  obs::Counter& quarantined =
      obs::Registry::Global().GetCounter("csv.rows_quarantined");
  const std::uint64_t before = quarantined.Value();

  // Two damaged rows in an otherwise healthy file.
  std::string csv = data::DatasetToCsv(suite_->split.test);
  csv += "torn,row\n";
  csv += "\"unterminated quote\n";
  data::CsvOptions options;
  options.quarantine = true;
  data::CsvReport report;
  const auto parsed = data::DatasetFromCsv(csv, "poisoned.csv", options,
                                           &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_GE(report.rows_quarantined, 2u);

  EXPECT_EQ(quarantined.Value() - before, report.rows_quarantined)
      << "csv.rows_quarantined must track CsvReport exactly";
}

TEST_F(FaultInjectionTest, PredictQuarantineIncrementsCounter) {
  obs::Counter& quarantined =
      obs::Registry::Global().GetCounter("predict.records_quarantined");
  obs::Counter& records =
      obs::Registry::Global().GetCounter("predict.records");
  const std::uint64_t quarantined_before = quarantined.Value();
  const std::uint64_t records_before = records.Value();

  data::Dataset poisoned = suite_->split.test;
  data::EmRecord degenerate;
  degenerate.label = 0;
  degenerate.left.values.assign(poisoned.schema.size(), "");
  degenerate.right.values.assign(poisoned.schema.size(), "");
  poisoned.records.push_back(degenerate);

  core::PredictionReport report;
  (void)suite_->model.PredictProbaBatch(poisoned, &report);
  ASSERT_EQ(report.quarantined.size(), 1u);

  EXPECT_EQ(quarantined.Value() - quarantined_before, 1u);
  EXPECT_EQ(records.Value() - records_before, poisoned.size());
}

TEST_F(FaultInjectionTest, CleanDatasetReportsClean) {
  core::PredictionReport report;
  const std::vector<double> probas =
      suite_->model.PredictProbaBatch(suite_->split.test, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.predicted, suite_->split.test.size());
  ASSERT_EQ(probas.size(), suite_->clean_probas.size());
  for (size_t i = 0; i < probas.size(); ++i) {
    EXPECT_DOUBLE_EQ(probas[i], suite_->clean_probas[i]);
  }
}

}  // namespace
}  // namespace wym
