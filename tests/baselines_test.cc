#include <gtest/gtest.h>

#include <memory>

#include "baselines/automl.h"
#include "baselines/cordel.h"
#include "baselines/ditto.h"
#include "baselines/dm_plus.h"
#include "baselines/similarity_features.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "ml/metrics.h"

namespace wym::baselines {
namespace {

/// Shared easy dataset: every baseline must clear a basic F1 bar on it.
const data::Split& EasySplit() {
  static const data::Split split =
      data::DefaultSplit(data::GenerateById("S-FZ", 42, 0.5), 42);
  return split;
}

TEST(SimilarityFeaturesTest, PerAttributeSignals) {
  const auto same = AttributePairFeatures("digital camera", "digital camera");
  ASSERT_EQ(same.size(), kPerAttributeFeatures);
  EXPECT_NEAR(same[0], 1.0, 1e-9);  // Jaro-Winkler.
  EXPECT_NEAR(same[1], 1.0, 1e-9);  // Token Jaccard.
  EXPECT_NEAR(same[6], 1.0, 1e-9);  // Both present.

  const auto different = AttributePairFeatures("digital camera", "oak table");
  EXPECT_LT(different[1], 0.2);

  const auto missing = AttributePairFeatures("camera", "");
  EXPECT_DOUBLE_EQ(missing[6], 0.0);
}

TEST(SimilarityFeaturesTest, NumericChannel) {
  const auto close = AttributePairFeatures("100.0", "105.0");
  const auto far = AttributePairFeatures("100.0", "999.0");
  EXPECT_GT(close[5], far[5]);
  const auto text = AttributePairFeatures("abc", "abd");
  EXPECT_DOUBLE_EQ(text[5], 0.0);
}

TEST(SimilarityFeaturesTest, RecordDimMatchesHelper) {
  data::EmRecord record;
  record.left.values = {"a", "b", "1"};
  record.right.values = {"a", "b", "1"};
  EXPECT_EQ(RecordSimilarityFeatures(record).size(), RecordFeatureDim(3));
}

TEST(CordelTest, ContrastFeaturesSeparateSharedAndUnique) {
  data::EmRecord match;
  match.left.values = {"digital camera x100", "sony"};
  match.right.values = {"digital camera x100", "sony"};
  data::EmRecord non_match;
  non_match.left.values = {"digital camera x100", "sony"};
  non_match.right.values = {"wireless router r7", "netgear"};

  const auto f_match = CordelMatcher::ContrastFeatures(match);
  const auto f_non = CordelMatcher::ContrastFeatures(non_match);
  // Last-but-one entries: total shared, total unique.
  const size_t n = f_match.size();
  EXPECT_GT(f_match[n - 3], f_non[n - 3]);  // Shared count.
  EXPECT_LT(f_match[n - 2], f_non[n - 2]);  // Unique count.
}

template <typename MatcherT>
void ExpectLearnsEasyDataset(double min_f1) {
  const data::Split& split = EasySplit();
  MatcherT matcher;
  matcher.Fit(split.train, split.validation);
  const double f1 =
      ml::F1Score(split.test.Labels(), matcher.PredictDataset(split.test));
  EXPECT_GE(f1, min_f1);
}

TEST(DmPlusTest, LearnsEasyDataset) {
  ExpectLearnsEasyDataset<DmPlusMatcher>(0.8);
}

TEST(AutoMlTest, LearnsEasyDatasetAndSelects) {
  const data::Split& split = EasySplit();
  AutoMlMatcher matcher;
  matcher.Fit(split.train, split.validation);
  EXPECT_FALSE(matcher.selected().empty());
  EXPECT_GE(ml::F1Score(split.test.Labels(),
                        matcher.PredictDataset(split.test)),
            0.8);
}

TEST(CordelTest, LearnsEasyDataset) {
  ExpectLearnsEasyDataset<CordelMatcher>(0.8);
}

TEST(DittoTest, LearnsEasyDataset) {
  ExpectLearnsEasyDataset<DittoMatcher>(0.8);
}

TEST(BaselineTest, ProbabilitiesAreValid) {
  const data::Split& split = EasySplit();
  std::vector<std::unique_ptr<core::Matcher>> matchers;
  matchers.push_back(std::make_unique<DmPlusMatcher>());
  matchers.push_back(std::make_unique<AutoMlMatcher>());
  matchers.push_back(std::make_unique<CordelMatcher>());
  matchers.push_back(std::make_unique<DittoMatcher>());
  for (auto& matcher : matchers) {
    matcher->Fit(split.train, split.validation);
    for (size_t i = 0; i < 20; ++i) {
      const double proba =
          matcher->PredictProba(split.test.records[i]);
      EXPECT_GE(proba, 0.0) << matcher->name();
      EXPECT_LE(proba, 1.0) << matcher->name();
    }
  }
}

TEST(BaselineTest, NamesMatchPaper) {
  EXPECT_STREQ(DmPlusMatcher().name(), "DM+");
  EXPECT_STREQ(AutoMlMatcher().name(), "AutoML");
  EXPECT_STREQ(CordelMatcher().name(), "CorDEL");
  EXPECT_STREQ(DittoMatcher().name(), "DITTO");
}

TEST(BaselineTest, DeterministicRefit) {
  const data::Split& split = EasySplit();
  CordelMatcher a, b;
  a.Fit(split.train, split.validation);
  b.Fit(split.train, split.validation);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(split.test.records[i]),
                     b.PredictProba(split.test.records[i]));
  }
}

}  // namespace
}  // namespace wym::baselines
