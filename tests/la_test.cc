#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen.h"
#include "la/matrix.h"
#include "la/sparse_matrix.h"
#include "la/vector_ops.h"

namespace wym::la {
namespace {

TEST(VectorOpsTest, DotNormCosine) {
  const Vec a = {1.0f, 0.0f, 2.0f};
  const Vec b = {0.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Dot(a, b), 8.0);
  EXPECT_DOUBLE_EQ(Norm(a), std::sqrt(5.0));
  EXPECT_NEAR(Cosine(a, a), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Cosine(Zeros(3), b), 0.0);
}

TEST(VectorOpsTest, AxpyScaleNormalize) {
  Vec a = {1.0f, 2.0f};
  Axpy(2.0, {1.0f, 1.0f}, &a);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
  Normalize(&a);
  EXPECT_NEAR(Norm(a), 1.0, 1e-6);
  Vec zero = Zeros(2);
  Normalize(&zero);  // Must not produce NaN.
  EXPECT_TRUE(IsZero(zero));
}

TEST(VectorOpsTest, MeanAndAbsDiffAreSymmetric) {
  const Vec a = {1.0f, -2.0f};
  const Vec b = {3.0f, 2.0f};
  EXPECT_EQ(MeanOf(a, b), MeanOf(b, a));
  EXPECT_EQ(AbsDiff(a, b), AbsDiff(b, a));
  EXPECT_FLOAT_EQ(MeanOf(a, b)[0], 2.0f);
  EXPECT_FLOAT_EQ(AbsDiff(a, b)[1], 4.0f);
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) a.At(i, j) = v++;
  }
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) b.At(i, j) = v++;
  }
  const Matrix c = a.Multiply(b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12] -> c = [58 64; 139 154].
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, TransposedRoundTrip) {
  Matrix a(2, 3);
  a.At(0, 2) = 5.0;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 5.0);
}

TEST(MatrixTest, OrthonormalizeColumns) {
  Matrix m(3, 2);
  m.At(0, 0) = 1.0;
  m.At(1, 0) = 1.0;
  m.At(0, 1) = 1.0;
  m.At(2, 1) = 2.0;
  m.OrthonormalizeColumns();
  double norm0 = 0.0, norm1 = 0.0, dot = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    norm0 += m.At(i, 0) * m.At(i, 0);
    norm1 += m.At(i, 1) * m.At(i, 1);
    dot += m.At(i, 0) * m.At(i, 1);
  }
  EXPECT_NEAR(norm0, 1.0, 1e-9);
  EXPECT_NEAR(norm1, 1.0, 1e-9);
  EXPECT_NEAR(dot, 0.0, 1e-9);
}

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.At(0, 0) = 3.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 2.0;
  const auto x = SolveLinearSystem(a, {9.0, 8.0});
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(SolveLinearSystemTest, RidgeStabilizesSingular) {
  Matrix a(2, 2);  // Rank 1.
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 1.0;
  const auto x = SolveLinearSystem(a, {2.0, 2.0}, /*ridge=*/1e-3);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  EXPECT_NEAR(x[0], 1.0, 1e-2);
}

TEST(SparseMatrixTest, MultiplyDense) {
  SparseMatrix s(3);
  s.Add(0, 1, 2.0);
  s.Add(1, 0, 2.0);
  s.Add(2, 2, 3.0);
  Matrix block(3, 1);
  block.At(0, 0) = 1.0;
  block.At(1, 0) = 2.0;
  block.At(2, 0) = 3.0;
  const Matrix out = s.MultiplyDense(block);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(out.At(2, 0), 9.0);
  EXPECT_EQ(s.EntryCount(), 3u);
}

TEST(EigenTest, RecoversDominantEigenpair) {
  // Diagonal matrix diag(5, 2, 1): top eigenvalue 5, eigenvector e0.
  SparseMatrix s(3);
  s.Add(0, 0, 5.0);
  s.Add(1, 1, 2.0);
  s.Add(2, 2, 1.0);
  const EigenResult eigen = TopEigenpairs(s, 2, 50, /*seed=*/13);
  EXPECT_NEAR(eigen.values[0], 5.0, 1e-6);
  EXPECT_NEAR(eigen.values[1], 2.0, 1e-6);
  EXPECT_NEAR(std::fabs(eigen.vectors.At(0, 0)), 1.0, 1e-6);
}

TEST(EigenTest, EmbeddingScalesBySqrtEigenvalue) {
  SparseMatrix s(2);
  s.Add(0, 0, 4.0);
  s.Add(1, 1, 1.0);
  const EigenResult eigen = TopEigenpairs(s, 2, 50, 7);
  const Matrix emb = EigenEmbedding(eigen);
  EXPECT_NEAR(std::fabs(emb.At(0, 0)), 2.0, 1e-6);
}

TEST(EigenTest, DeterministicForSeed) {
  SparseMatrix s(4);
  for (size_t i = 0; i < 4; ++i) s.Add(i, (i + 1) % 4, 1.0);
  for (size_t i = 0; i < 4; ++i) s.Add((i + 1) % 4, i, 1.0);
  const EigenResult a = TopEigenpairs(s, 2, 30, 99);
  const EigenResult b = TopEigenpairs(s, 2, 30, 99);
  EXPECT_EQ(a.vectors.data(), b.vectors.data());
  EXPECT_EQ(a.values, b.values);
}

}  // namespace
}  // namespace wym::la
