// Tests of the SIMD kernel layer (la/kernels.h): bit-identity of every
// dispatch path (scalar vs SSE2 vs AVX2) on randomized inputs, the
// WYM_SIMD environment contract, and the end-to-end guarantee that the
// selected path does not change pipeline outputs — identical decision
// units and byte-identical trained model files.
//
// The whole suite is re-run by ctest with WYM_SIMD=off (see
// tests/CMakeLists.txt) so the scalar dispatch path stays exercised.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/tokenized_record.h"
#include "core/unit_generator.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "embedding/semantic_encoder.h"
#include "la/kernels.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace wym {
namespace {

using la::kernels::SimdLevel;

/// Restores the ambient dispatch level when a test body returns.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(la::kernels::ActiveSimdLevel()) {
    la::kernels::SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { la::kernels::SetSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel detected = la::kernels::DetectedSimdLevel();
  if (detected >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (detected >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

// Sizes chosen to cover the empty case, pure-tail cases, one full
// 8-block, and block+tail combinations.
const size_t kSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 72, 129};

std::vector<float> RandomF32(Rng* rng, size_t n) {
  std::vector<float> out(n);
  for (auto& v : out) v = static_cast<float>(rng->Uniform(-1.5, 1.5));
  return out;
}

std::vector<double> RandomF64(Rng* rng, size_t n) {
  std::vector<double> out(n);
  for (auto& v : out) v = rng->Uniform(-1.5, 1.5);
  return out;
}

TEST(KernelDispatchTest, DetectedLevelIsAtLeastScalar) {
  EXPECT_GE(la::kernels::DetectedSimdLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(la::kernels::SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(la::kernels::SimdLevelName(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(la::kernels::SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(KernelDispatchTest, ActiveLevelRespectsWymSimdEnv) {
  // The suite runs twice under ctest: once with the default dispatch
  // and once with WYM_SIMD=off. SetSimdLevel-based tests override the
  // active level, so this is the one place the env resolution itself is
  // asserted. Restore whatever a previous test left active first.
  la::kernels::SetSimdLevel(la::kernels::DetectedSimdLevel());
  const char* env = std::getenv("WYM_SIMD");
  if (env != nullptr && std::strcmp(env, "off") == 0) {
    // ctest scalar re-run: forcing anything above scalar must still work,
    // but the env-resolved startup level was scalar (checked indirectly:
    // resolution happened before this test could interfere).
    EXPECT_EQ(la::kernels::SetSimdLevel(SimdLevel::kScalar),
              SimdLevel::kScalar);
  }
  EXPECT_EQ(la::kernels::SetSimdLevel(SimdLevel::kAvx2),
            la::kernels::DetectedSimdLevel());
}

TEST(KernelDispatchTest, SetSimdLevelClampsToDetected) {
  ScopedSimdLevel guard(la::kernels::DetectedSimdLevel());
  EXPECT_EQ(la::kernels::SetSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(la::kernels::ActiveSimdLevel(), SimdLevel::kScalar);
  const SimdLevel applied = la::kernels::SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_LE(applied, la::kernels::DetectedSimdLevel());
  EXPECT_EQ(applied, la::kernels::ActiveSimdLevel());
}

TEST(KernelParityTest, ReductionsBitIdenticalAcrossLevels) {
  Rng rng(0xBEEF);
  for (size_t n : kSizes) {
    const std::vector<float> fa = RandomF32(&rng, n);
    const std::vector<float> fb = RandomF32(&rng, n);
    const std::vector<double> da = RandomF64(&rng, n);
    const std::vector<double> db = RandomF64(&rng, n);

    ScopedSimdLevel guard(SimdLevel::kScalar);
    const double dot_f32 = la::kernels::Dot(fa.data(), fb.data(), n);
    const double dot_f64 = la::kernels::Dot(da.data(), db.data(), n);
    const double sqnorm_f32 = la::kernels::SquaredNorm(fa.data(), n);
    const double sqnorm_f64 = la::kernels::SquaredNorm(da.data(), n);
    const double sqdist = la::kernels::SquaredDistance(da.data(), db.data(), n);

    for (SimdLevel level : AvailableLevels()) {
      la::kernels::SetSimdLevel(level);
      SCOPED_TRACE(testing::Message() << "n=" << n << " level="
                                      << la::kernels::SimdLevelName(level));
      // Bit-identical, not approximately equal.
      EXPECT_EQ(dot_f32, la::kernels::Dot(fa.data(), fb.data(), n));
      EXPECT_EQ(dot_f64, la::kernels::Dot(da.data(), db.data(), n));
      EXPECT_EQ(sqnorm_f32, la::kernels::SquaredNorm(fa.data(), n));
      EXPECT_EQ(sqnorm_f64, la::kernels::SquaredNorm(da.data(), n));
      EXPECT_EQ(sqdist,
                la::kernels::SquaredDistance(da.data(), db.data(), n));
    }
  }
}

TEST(KernelParityTest, ElementwiseOpsBitIdenticalAcrossLevels) {
  Rng rng(0xCAFE);
  for (size_t n : kSizes) {
    const std::vector<float> fx = RandomF32(&rng, n);
    const std::vector<float> fy = RandomF32(&rng, n);
    const std::vector<double> dx = RandomF64(&rng, n);
    const std::vector<double> dy = RandomF64(&rng, n);
    const double scale = rng.Uniform(-2.0, 2.0);

    std::vector<float> f_ref = fy;
    std::vector<double> d_ref = dy;
    std::vector<float> f_scale_ref = fx;
    std::vector<double> d_scale_ref = dx;
    {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      la::kernels::Axpy(scale, fx.data(), f_ref.data(), n);
      la::kernels::Axpy(scale, dx.data(), d_ref.data(), n);
      la::kernels::Scale(scale, f_scale_ref.data(), n);
      la::kernels::Scale(scale, d_scale_ref.data(), n);
    }

    for (SimdLevel level : AvailableLevels()) {
      ScopedSimdLevel guard(level);
      SCOPED_TRACE(testing::Message() << "n=" << n << " level="
                                      << la::kernels::SimdLevelName(level));
      std::vector<float> f_out = fy;
      std::vector<double> d_out = dy;
      std::vector<float> f_scale_out = fx;
      std::vector<double> d_scale_out = dx;
      la::kernels::Axpy(scale, fx.data(), f_out.data(), n);
      la::kernels::Axpy(scale, dx.data(), d_out.data(), n);
      la::kernels::Scale(scale, f_scale_out.data(), n);
      la::kernels::Scale(scale, d_scale_out.data(), n);
      EXPECT_EQ(f_ref, f_out);
      EXPECT_EQ(d_ref, d_out);
      EXPECT_EQ(f_scale_ref, f_scale_out);
      EXPECT_EQ(d_scale_ref, d_scale_out);
    }
  }
}

TEST(KernelParityTest, SimilarityMatrixBitIdenticalAcrossLevels) {
  Rng rng(0xD07);
  const size_t rows_a = 13, rows_b = 29, dim = 72;
  const std::vector<float> a = RandomF32(&rng, rows_a * dim);
  const std::vector<float> b = RandomF32(&rng, rows_b * dim);

  std::vector<double> reference(rows_a * rows_b);
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    la::kernels::SimilarityMatrix(a.data(), rows_a, b.data(), rows_b, dim,
                                  reference.data());
  }
  // The reference agrees with per-cell Dot.
  for (size_t i = 0; i < rows_a; ++i) {
    for (size_t j = 0; j < rows_b; ++j) {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      EXPECT_EQ(reference[i * rows_b + j],
                la::kernels::Dot(a.data() + i * dim, b.data() + j * dim, dim));
    }
  }

  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    SCOPED_TRACE(la::kernels::SimdLevelName(level));
    std::vector<double> out(rows_a * rows_b);
    la::kernels::SimilarityMatrix(a.data(), rows_a, b.data(), rows_b, dim,
                                  out.data());
    EXPECT_EQ(reference, out);
  }
}

// --- Int8 quantized tier ---------------------------------------------

TEST(QuantizeI8Test, RoundHalfAwayFromZero) {
  // max|x| = 127 makes the quantization step exactly 1, so expected
  // codes are just round-half-away(x).
  const float row[] = {127.0f, 0.5f, -0.5f, 2.5f, -2.5f,
                       0.49f,  -0.49f, 126.5f, -127.0f};
  const size_t n = sizeof(row) / sizeof(row[0]);
  const int8_t expected[] = {127, 1, -1, 3, -3, 0, 0, 127, -127};
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    SCOPED_TRACE(la::kernels::SimdLevelName(level));
    int8_t q[n];
    float scale = -1.0f;
    la::kernels::QuantizeRowsI8(row, 1, n, q, &scale);
    EXPECT_EQ(scale, 1.0f);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(q[i], expected[i]) << "element " << i;
    }
  }
}

TEST(QuantizeI8Test, RoundTripErrorWithinHalfScale) {
  Rng rng(0x1817);
  for (size_t dim : kSizes) {
    if (dim == 0) continue;
    const std::vector<float> row = RandomF32(&rng, dim);
    std::vector<int8_t> q(dim);
    float scale = 0.0f;
    la::kernels::QuantizeRowsI8(row.data(), 1, dim, q.data(), &scale);
    ASSERT_GT(scale, 0.0f);
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_GE(q[i], -127);
      EXPECT_LE(q[i], 127);
      const double dequant = static_cast<double>(q[i]) * scale;
      // |x - dequant| <= scale/2: exact in real arithmetic; the small
      // slack absorbs the float rounding of the scale inverse.
      EXPECT_LE(std::abs(static_cast<double>(row[i]) - dequant),
                0.5 * scale * 1.001)
          << "dim=" << dim << " i=" << i;
    }
  }
}

TEST(QuantizeI8Test, EdgeCases) {
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    SCOPED_TRACE(la::kernels::SimdLevelName(level));

    // All-zero row: scale 0, all-zero codes; DotI8 of it is 0.
    const float zero_row[8] = {0.0f};
    int8_t q[8] = {1, 1, 1, 1, 1, 1, 1, 1};
    float scale = -1.0f;
    la::kernels::QuantizeRowsI8(zero_row, 1, 8, q, &scale);
    EXPECT_EQ(scale, 0.0f);
    for (int8_t code : q) EXPECT_EQ(code, 0);
    EXPECT_EQ(la::kernels::DotI8(q, q, 8), 0);
    EXPECT_EQ(la::kernels::DotI8(q, q, 8, scale, scale), 0.0);

    // Empty dim: no-op on codes, zero dot.
    la::kernels::QuantizeRowsI8(zero_row, 1, 0, q, &scale);
    EXPECT_EQ(scale, 0.0f);
    EXPECT_EQ(la::kernels::DotI8(q, q, 0), 0);

    // Zero rows: nothing touched.
    la::kernels::QuantizeRowsI8(nullptr, 0, 8, nullptr, nullptr);

    // Saturation: huge dynamic range — the max-magnitude elements land
    // exactly on +/-127, everything stays inside the symmetric range
    // (the -128 code is never produced).
    const float wide[4] = {1e30f, -1e30f, 1.0f, -5e29f};
    int8_t wq[4];
    float wscale = 0.0f;
    la::kernels::QuantizeRowsI8(wide, 1, 4, wq, &wscale);
    EXPECT_EQ(wq[0], 127);
    EXPECT_EQ(wq[1], -127);
    EXPECT_EQ(wq[2], 0);  // 1.0 is far below half a step.
    for (int8_t code : wq) {
      EXPECT_GE(code, -127);
      EXPECT_LE(code, 127);
    }
  }
}

TEST(KernelParityTest, I8KernelsIdenticalAcrossLevels) {
  // Stronger than the float contract: int32 accumulation is exact, so
  // quantized codes, scales, raw dots and scaled dots must agree across
  // *all* levels, not merely within one.
  Rng rng(0x18B17);
  for (size_t n : kSizes) {
    const std::vector<float> fa = RandomF32(&rng, n);
    const std::vector<float> fb = RandomF32(&rng, n);

    std::vector<int8_t> qa_ref(n), qb_ref(n);
    float sa_ref = 0.0f, sb_ref = 0.0f;
    int32_t raw_ref = 0;
    double scaled_ref = 0.0;
    {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      la::kernels::QuantizeRowsI8(fa.data(), 1, n, qa_ref.data(), &sa_ref);
      la::kernels::QuantizeRowsI8(fb.data(), 1, n, qb_ref.data(), &sb_ref);
      raw_ref = la::kernels::DotI8(qa_ref.data(), qb_ref.data(), n);
      scaled_ref =
          la::kernels::DotI8(qa_ref.data(), qb_ref.data(), n, sa_ref, sb_ref);
    }

    for (SimdLevel level : AvailableLevels()) {
      ScopedSimdLevel guard(level);
      SCOPED_TRACE(testing::Message() << "n=" << n << " level="
                                      << la::kernels::SimdLevelName(level));
      std::vector<int8_t> qa(n), qb(n);
      float sa = 0.0f, sb = 0.0f;
      la::kernels::QuantizeRowsI8(fa.data(), 1, n, qa.data(), &sa);
      la::kernels::QuantizeRowsI8(fb.data(), 1, n, qb.data(), &sb);
      EXPECT_EQ(qa, qa_ref);
      EXPECT_EQ(qb, qb_ref);
      EXPECT_EQ(sa, sa_ref);
      EXPECT_EQ(sb, sb_ref);
      EXPECT_EQ(la::kernels::DotI8(qa.data(), qb.data(), n), raw_ref);
      EXPECT_EQ(la::kernels::DotI8(qa.data(), qb.data(), n, sa, sb),
                scaled_ref);
    }
  }
}

TEST(KernelParityTest, SimilarityMatrixI8IdenticalAcrossLevels) {
  Rng rng(0x51318);
  const size_t rows_a = 13, rows_b = 29, dim = 72;
  const std::vector<float> a = RandomF32(&rng, rows_a * dim);
  const std::vector<float> b = RandomF32(&rng, rows_b * dim);

  std::vector<int8_t> qa(rows_a * dim), qb(rows_b * dim);
  std::vector<float> sa(rows_a), sb(rows_b);
  std::vector<double> reference(rows_a * rows_b);
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    la::kernels::QuantizeRowsI8(a.data(), rows_a, dim, qa.data(), sa.data());
    la::kernels::QuantizeRowsI8(b.data(), rows_b, dim, qb.data(), sb.data());
    la::kernels::SimilarityMatrixI8(qa.data(), rows_a, sa.data(), qb.data(),
                                    rows_b, sb.data(), dim, reference.data());
    // The blocked matrix agrees with per-cell DotI8.
    for (size_t i = 0; i < rows_a; ++i) {
      for (size_t j = 0; j < rows_b; ++j) {
        EXPECT_EQ(reference[i * rows_b + j],
                  la::kernels::DotI8(qa.data() + i * dim, qb.data() + j * dim,
                                     dim, sa[i], sb[j]));
      }
    }
  }

  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    SCOPED_TRACE(la::kernels::SimdLevelName(level));
    std::vector<double> out(rows_a * rows_b);
    la::kernels::SimilarityMatrixI8(qa.data(), rows_a, sa.data(), qb.data(),
                                    rows_b, sb.data(), dim, out.data());
    EXPECT_EQ(reference, out);
  }
}

// --- End-to-end: the dispatch path must not change pipeline outputs ---

core::TokenizedRecord EncodeFirstRecord(const data::Dataset& dataset) {
  const text::Tokenizer tokenizer;
  embedding::SemanticEncoderOptions options;
  options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(options);
  encoder.Fit({});
  core::TokenizedRecord record = core::TokenizeRecord(
      dataset.records.front(), dataset.schema, tokenizer);
  core::EncodeEntity(encoder, &record.left);
  core::EncodeEntity(encoder, &record.right);
  return record;
}

TEST(KernelPipelineTest, DecisionUnitsIdenticalAcrossLevels) {
  const data::Dataset dataset = data::GenerateById("S-WA", 42, 0.1);
  const core::DecisionUnitGenerator generator;

  // Encoding itself runs through the kernels, so each level encodes its
  // own copy: the test covers encode + packing + unit generation.
  std::vector<core::DecisionUnit> reference;
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    const core::TokenizedRecord record = EncodeFirstRecord(dataset);
    reference = generator.Generate(record.left, record.right,
                                   dataset.schema.size());
  }
  ASSERT_FALSE(reference.empty());

  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    SCOPED_TRACE(la::kernels::SimdLevelName(level));
    const core::TokenizedRecord record = EncodeFirstRecord(dataset);
    const std::vector<core::DecisionUnit> units =
        generator.Generate(record.left, record.right, dataset.schema.size());
    ASSERT_EQ(units.size(), reference.size());
    for (size_t u = 0; u < units.size(); ++u) {
      EXPECT_EQ(units[u].paired, reference[u].paired);
      EXPECT_EQ(units[u].phase, reference[u].phase);
      EXPECT_EQ(units[u].left.position, reference[u].left.position);
      EXPECT_EQ(units[u].right.position, reference[u].right.position);
      EXPECT_EQ(units[u].left.token, reference[u].left.token);
      EXPECT_EQ(units[u].right.token, reference[u].right.token);
      // Similarities bit-identical, not approximately equal.
      EXPECT_EQ(std::memcmp(&units[u].similarity, &reference[u].similarity,
                            sizeof(double)),
                0);
    }
  }
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(KernelPipelineTest, TrainedModelFilesByteIdenticalAcrossLevels) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.25);
  const data::Split split = data::DefaultSplit(dataset, 42);

  auto train_and_save = [&](SimdLevel level, const std::string& path) {
    ScopedSimdLevel guard(level);
    core::WymModel model;
    model.Fit(split.train, split.validation);
    ASSERT_TRUE(model.SaveToFile(path).ok());
  };

  // PID-unique paths: ctest runs this binary twice (default dispatch and
  // the WYM_SIMD=off rerun), possibly concurrently.
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const std::string scalar_path =
      testing::TempDir() + "/wym_scalar_" + tag + ".bin";
  const std::string simd_path = testing::TempDir() + "/wym_simd_" + tag + ".bin";
  train_and_save(SimdLevel::kScalar, scalar_path);
  train_and_save(la::kernels::DetectedSimdLevel(), simd_path);

  const std::string scalar_bytes = FileBytes(scalar_path);
  const std::string simd_bytes = FileBytes(simd_path);
  ASSERT_FALSE(scalar_bytes.empty());
  EXPECT_EQ(scalar_bytes, simd_bytes)
      << "training under WYM_SIMD=off and under the dispatched kernels "
         "must produce byte-identical model files";
  std::remove(scalar_path.c_str());
  std::remove(simd_path.c_str());
}

// --- Quantized pipeline: fp fallback, accuracy, thread determinism ---

TEST(QuantizedPipelineTest, QuantizedMatrixCloseToFpAndFallbackSelectable) {
  const data::Dataset dataset = data::GenerateById("S-WA", 42, 0.1);
  const core::TokenizedRecord record = EncodeFirstRecord(dataset);

  core::UnitGeneratorOptions fp_options;
  fp_options.quantized = false;
  const core::DecisionUnitGenerator fp_generator(fp_options);
  const core::DecisionUnitGenerator i8_generator;  // Default: quantized.
  ASSERT_TRUE(i8_generator.options().quantized);

  const la::Matrix fp = fp_generator.PairSimilarityMatrix(record.left,
                                                          record.right);
  const la::Matrix i8 = i8_generator.PairSimilarityMatrix(record.left,
                                                          record.right);
  ASSERT_EQ(fp.rows(), i8.rows());
  ASSERT_EQ(fp.cols(), i8.cols());
  ASSERT_GT(fp.rows() * fp.cols(), 0u);
  // Per-element quantization error of a unit row is at most scale/2
  // with scale <= 1/127, so cosines drift by a few hundredths at most.
  for (size_t i = 0; i < fp.rows(); ++i) {
    for (size_t j = 0; j < fp.cols(); ++j) {
      EXPECT_NEAR(fp.Row(i)[j], i8.Row(i)[j], 0.05)
          << "cell (" << i << ", " << j << ")";
    }
  }
}

TEST(QuantizedPipelineTest, ScratchQuantizationMatchesEncodeTimeCache) {
  // A stripped entity (no encode-time caches) must produce the exact
  // same quantized similarity matrix as the cached one.
  const data::Dataset dataset = data::GenerateById("S-WA", 42, 0.1);
  const core::TokenizedRecord record = EncodeFirstRecord(dataset);
  ASSERT_TRUE(record.left.HasQuantizedEmbeddings());

  core::TokenizedRecord stripped = record;
  stripped.left.packed_embeddings.clear();
  stripped.left.quantized_embeddings.clear();
  stripped.left.quantized_scales.clear();
  stripped.right.packed_embeddings.clear();
  stripped.right.quantized_embeddings.clear();
  stripped.right.quantized_scales.clear();
  ASSERT_FALSE(stripped.left.HasQuantizedEmbeddings());

  const core::DecisionUnitGenerator generator;
  const la::Matrix cached =
      generator.PairSimilarityMatrix(record.left, record.right);
  const la::Matrix scratch =
      generator.PairSimilarityMatrix(stripped.left, stripped.right);
  ASSERT_EQ(cached.rows(), scratch.rows());
  ASSERT_EQ(cached.cols(), scratch.cols());
  for (size_t i = 0; i < cached.rows(); ++i) {
    for (size_t j = 0; j < cached.cols(); ++j) {
      EXPECT_EQ(cached.Row(i)[j], scratch.Row(i)[j]);
    }
  }
}

TEST(QuantizedPipelineTest, PredictionsBitIdenticalAcrossThreadCounts) {
  // 1-vs-8-thread byte-identity of the whole predict path with the
  // quantized fast path on (the default config).
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.25);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel model;
  ASSERT_TRUE(model.config().generator.quantized);
  model.Fit(split.train, split.validation);

  util::ThreadPool one(1), eight(8);
  const std::vector<double> p1 = model.PredictProbaBatch(split.test, &one);
  const std::vector<double> p8 = model.PredictProbaBatch(split.test, &eight);
  ASSERT_EQ(p1.size(), p8.size());
  ASSERT_FALSE(p1.empty());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(std::memcmp(&p1[i], &p8[i], sizeof(double)), 0)
        << "record " << i;
  }
}

}  // namespace
}  // namespace wym
