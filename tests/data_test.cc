#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/benchmark_gen.h"
#include "data/catalog.h"
#include "data/corruption.h"
#include "data/csv.h"
#include "data/record.h"
#include "data/split.h"
#include "util/random.h"

namespace wym::data {
namespace {

TEST(DatasetTest, MatchStatistics) {
  Dataset dataset;
  dataset.schema = {{"a"}};
  for (int i = 0; i < 10; ++i) {
    EmRecord record;
    record.left.values = {"x"};
    record.right.values = {"x"};
    record.label = i < 3 ? 1 : 0;
    dataset.records.push_back(record);
  }
  EXPECT_EQ(dataset.MatchCount(), 3u);
  EXPECT_NEAR(dataset.MatchPercent(), 30.0, 1e-12);
  EXPECT_EQ(dataset.Labels().size(), 10u);
}

TEST(SplitTest, ProportionsAndStratification) {
  Dataset dataset;
  dataset.schema = {{"a"}};
  for (int i = 0; i < 200; ++i) {
    EmRecord record;
    record.left.values = {"v"};
    record.right.values = {"v"};
    record.label = i % 5 == 0 ? 1 : 0;  // 20% matches.
    dataset.records.push_back(record);
  }
  const Split split = DefaultSplit(dataset, 7);
  EXPECT_EQ(split.train.size() + split.validation.size() + split.test.size(),
            dataset.size());
  EXPECT_NEAR(static_cast<double>(split.train.size()) / dataset.size(), 0.6,
              0.02);
  // Stratified: every partition keeps ~20% matches.
  EXPECT_NEAR(split.train.MatchPercent(), 20.0, 3.0);
  EXPECT_NEAR(split.validation.MatchPercent(), 20.0, 5.0);
  EXPECT_NEAR(split.test.MatchPercent(), 20.0, 5.0);
}

TEST(SplitTest, DeterministicAndDisjoint) {
  const Dataset dataset = GenerateById("S-BR", 5, 0.3);
  const Split a = DefaultSplit(dataset, 9);
  const Split b = DefaultSplit(dataset, 9);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.records[i].left.values,
              b.train.records[i].left.values);
  }
}

TEST(CsvTest, RoundTripWithQuoting) {
  Dataset dataset;
  dataset.name = "quoted";
  dataset.schema = {{"name", "notes"}};
  EmRecord record;
  record.left.values = {"laptop, 15\" screen", "says \"hello\"\nworld"};
  record.right.values = {"laptop", ""};
  record.label = 1;
  dataset.records.push_back(record);

  const std::string csv = DatasetToCsv(dataset);
  // Embedded newline forces quote-aware parsing... our writer keeps
  // newline inside quotes but the reader parses per line; replace with
  // space for the round trip guarantee we actually provide.
  auto result = DatasetFromCsv(csv, "quoted");
  if (result.ok()) {
    EXPECT_EQ(result.value().schema, dataset.schema);
  }
}

TEST(CsvTest, SimpleRoundTripExact) {
  Dataset dataset;
  dataset.name = "simple";
  dataset.schema = {{"name", "price"}};
  for (int i = 0; i < 5; ++i) {
    EmRecord record;
    record.left.values = {"sony camera, deluxe", std::to_string(i)};
    record.right.values = {"sony \"camera\"", "9.99"};
    record.label = i % 2;
    dataset.records.push_back(record);
  }
  const auto result = DatasetFromCsv(DatasetToCsv(dataset), "simple");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& parsed = result.value();
  ASSERT_EQ(parsed.size(), dataset.size());
  EXPECT_EQ(parsed.schema, dataset.schema);
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed.records[i].left.values, dataset.records[i].left.values);
    EXPECT_EQ(parsed.records[i].right.values,
              dataset.records[i].right.values);
    EXPECT_EQ(parsed.records[i].label, dataset.records[i].label);
  }
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(DatasetFromCsv("", "x").ok());
  EXPECT_FALSE(DatasetFromCsv("foo,left_a,right_a\n", "x").ok());
  EXPECT_FALSE(DatasetFromCsv("label,left_a,right_b\n", "x").ok());
  EXPECT_FALSE(DatasetFromCsv("label,left_a,right_a\n2,x,y\n", "x").ok());
  EXPECT_FALSE(DatasetFromCsv("label,left_a,right_a\n1,x\n", "x").ok());
}

// ---------------------------------------------------------------------
// Adversarial CSV corpus: the same damaged inputs exercised twice —
// strict mode (default) must fail with a file:line diagnostic naming
// the first bad row; quarantine mode must skip-and-count the bad rows
// and return every healthy one.
// ---------------------------------------------------------------------

constexpr char kHeader[] = "label,left_name,right_name\n";

TEST(CsvCorpusTest, RaggedRowsStrictNamesTheLine) {
  const std::string csv = std::string(kHeader) +
                          "1,alpha,beta\n"
                          "0,too,many,fields\n"
                          "1,gamma,delta\n";
  const auto strict = DatasetFromCsv(csv, "ragged.csv");
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kCorruption);
  EXPECT_NE(strict.status().message().find("ragged.csv:3"), std::string::npos)
      << strict.status().ToString();
  EXPECT_NE(strict.status().message().find("4 field(s), expected 3"),
            std::string::npos)
      << strict.status().ToString();
}

TEST(CsvCorpusTest, RaggedRowsQuarantineSkipsAndCounts) {
  const std::string csv = std::string(kHeader) +
                          "1,alpha,beta\n"
                          "0,too,many,fields\n"
                          "0,short\n"
                          "1,gamma,delta\n";
  CsvOptions options;
  options.quarantine = true;
  CsvReport report;
  const auto result = DatasetFromCsv(csv, "ragged.csv", options, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 2u);
  EXPECT_EQ(report.rows_ok, 2u);
  EXPECT_EQ(report.rows_quarantined, 2u);
  ASSERT_EQ(report.errors.size(), 2u);
  EXPECT_EQ(report.errors[0].line, 3u);
  EXPECT_EQ(report.errors[1].line, 4u);
  EXPECT_EQ(result.value().records[1].left.values[0], "gamma");
}

TEST(CsvCorpusTest, UnterminatedQuoteIsCaughtInBothModes) {
  const std::string csv = std::string(kHeader) +
                          "1,\"never closed,beta\n"
                          "0,fine,fine\n";
  const auto strict = DatasetFromCsv(csv, "quote.csv");
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("unterminated quote"),
            std::string::npos)
      << strict.status().ToString();

  CsvOptions options;
  options.quarantine = true;
  CsvReport report;
  const auto lenient = DatasetFromCsv(csv, "quote.csv", options, &report);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(report.rows_quarantined, 1u);
  EXPECT_EQ(report.rows_ok, 1u);
}

TEST(CsvCorpusTest, QuoteEdgeCasesParseExactly) {
  // Escaped quotes, quoted separators, quoted empty, adjacent quoted
  // segments — all within one row.
  const std::string csv = std::string(kHeader) +
                          "1,\"say \"\"hi\"\"\",\"a,b\"\n"
                          "0,\"\",pre\"mid\"post\n";
  const auto result = DatasetFromCsv(csv, "edges.csv");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value().records[0].left.values[0], "say \"hi\"");
  EXPECT_EQ(result.value().records[0].right.values[0], "a,b");
  EXPECT_EQ(result.value().records[1].left.values[0], "");
  EXPECT_EQ(result.value().records[1].right.values[0], "premidpost");
}

TEST(CsvCorpusTest, CrlfAndBlankLinesAreTolerated) {
  const std::string csv = "label,left_name,right_name\r\n"
                          "1,alpha,beta\r\n"
                          "\r\n"
                          "\n"
                          "0,gamma,delta\r\n";
  const auto result = DatasetFromCsv(csv, "crlf.csv");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value().records[0].left.values[0], "alpha");
  EXPECT_EQ(result.value().records[1].right.values[0], "delta");
}

TEST(CsvCorpusTest, EmbeddedNulBytesSurviveRoundTrip) {
  // A NUL inside a value must neither truncate the field nor derail the
  // parser (the reader is byte-clean, not C-string based).
  std::string csv = std::string(kHeader);
  csv += "1,ab";
  csv += '\0';
  csv += "cd,efg\n";
  const auto result = DatasetFromCsv(csv, "nul.csv");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 1u);
  const std::string& value = result.value().records[0].left.values[0];
  ASSERT_EQ(value.size(), 5u);
  EXPECT_EQ(value[2], '\0');
  EXPECT_EQ(result.value().records[0].right.values[0], "efg");
}

TEST(CsvCorpusTest, OversizedFieldIsRejectedWithItsSize) {
  const std::string big(1 << 20, 'x');  // Exactly the 1 MiB default cap.
  const std::string csv =
      std::string(kHeader) + "1," + big + "y,beta\n0,ok,ok\n";
  const auto strict = DatasetFromCsv(csv, "big.csv");
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("bytes (limit"), std::string::npos)
      << strict.status().ToString();

  // At the cap exactly: accepted.
  const auto at_cap =
      DatasetFromCsv(std::string(kHeader) + "1," + big + ",beta\n", "big.csv");
  ASSERT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  EXPECT_EQ(at_cap.value().records[0].left.values[0].size(), big.size());

  // Quarantine mode: the monster row is skipped, the healthy row kept.
  CsvOptions options;
  options.quarantine = true;
  CsvReport report;
  const auto lenient = DatasetFromCsv(csv, "big.csv", options, &report);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(report.rows_quarantined, 1u);
  EXPECT_EQ(lenient.value().size(), 1u);
}

TEST(CsvCorpusTest, BadLabelsQuarantineWithReason) {
  const std::string csv = std::string(kHeader) +
                          "2,alpha,beta\n"
                          "yes,gamma,delta\n"
                          "1,good,row\n";
  CsvOptions options;
  options.quarantine = true;
  CsvReport report;
  const auto result = DatasetFromCsv(csv, "labels.csv", options, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.rows_quarantined, 2u);
  ASSERT_GE(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].reason.find("label must be 0/1"),
            std::string::npos);
}

TEST(CsvCorpusTest, AllRowsBadRefusesEvenInQuarantineMode) {
  const std::string csv = std::string(kHeader) + "2,a,b\n3,c,d\n";
  CsvOptions options;
  options.quarantine = true;
  CsvReport report;
  const auto result = DatasetFromCsv(csv, "allbad.csv", options, &report);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  EXPECT_EQ(report.rows_quarantined, 2u);
}

TEST(CsvCorpusTest, DamagedHeaderIsFatalEvenInQuarantineMode) {
  CsvOptions options;
  options.quarantine = true;
  const auto result =
      DatasetFromCsv("label,\"left_name,right_name\n1,a,b\n", "hdr.csv",
                     options, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("hdr.csv:1"), std::string::npos)
      << result.status().ToString();
}

TEST(CsvTest, FileRoundTrip) {
  const Dataset dataset = GenerateById("S-FZ", 3, 0.1);
  const std::string path = "/tmp/wym_csv_test.csv";
  ASSERT_TRUE(WriteDatasetCsv(dataset, path).ok());
  const auto result = ReadDatasetCsv(path, dataset.name);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), dataset.size());
  EXPECT_EQ(result.value().MatchCount(), dataset.MatchCount());
}

TEST(CorruptionTest, TypoChangesAtMostOneEditAway) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const std::string typo = ApplyTypo("external", &rng);
    EXPECT_FALSE(typo.empty());
    // Single edit: length within +-1.
    EXPECT_LE(std::abs(static_cast<int>(typo.size()) - 8), 1);
  }
}

TEST(CorruptionTest, ZeroProfileIsIdentityExceptNumbers) {
  CorruptionProfile profile;
  profile.typo = 0;
  profile.drop_token = 0;
  profile.abbreviate = 0;
  profile.duplicate_token = 0;
  profile.reorder = 0;
  profile.value_missing = 0;
  profile.numeric_jitter = 0;
  profile.synonym = 0;
  Schema schema{{"name", "brand"}};
  Entity entity;
  entity.values = {"digital camera deluxe", "sony"};
  Rng rng(1);
  const Entity view = CorruptEntity(entity, schema, profile, &rng);
  EXPECT_EQ(view.values, entity.values);
}

TEST(CorruptionTest, IdentityAttributeNeverGoesMissing) {
  CorruptionProfile profile;
  profile.value_missing = 1.0;  // Certain dropout...
  Schema schema{{"name", "brand", "price"}};
  Entity entity;
  entity.values = {"camera", "sony", "19.99"};
  Rng rng(2);
  const Entity view = CorruptEntity(entity, schema, profile, &rng);
  EXPECT_FALSE(view.values[0].empty());  // ...except for attribute 0.
  EXPECT_TRUE(view.values[1].empty());
}

TEST(CorruptionTest, AbbreviationApplies) {
  CorruptionProfile profile;
  profile.abbreviate = 1.0;
  profile.typo = 0;
  profile.drop_token = 0;
  profile.reorder = 0;
  profile.value_missing = 0;
  profile.duplicate_token = 0;
  profile.synonym = 0;
  Schema schema{{"name"}};
  Entity entity;
  entity.values = {"professional exchange server"};
  Rng rng(3);
  const Entity view = CorruptEntity(entity, schema, profile, &rng);
  EXPECT_EQ(view.values[0], "pro exch svr");
}

TEST(CorruptionTest, YearsDriftByOne) {
  CorruptionProfile profile;
  profile.numeric_jitter = 0.5;
  Schema schema{{"title", "year"}};
  Entity entity;
  entity.values = {"paper", "2005"};
  Rng rng(5);
  bool saw_drift = false;
  for (int i = 0; i < 30; ++i) {
    const Entity view = CorruptEntity(entity, schema, profile, &rng);
    const int year = std::stoi(view.values[1]);
    EXPECT_GE(year, 2004);
    EXPECT_LE(year, 2006);
    saw_drift = saw_drift || year != 2005;
  }
  EXPECT_TRUE(saw_drift);
}

TEST(CatalogTest, SchemasAndGeneration) {
  Rng rng(13);
  for (Domain domain :
       {Domain::kBibliographic, Domain::kSoftware, Domain::kProduct,
        Domain::kBeer, Domain::kSong, Domain::kRestaurant}) {
    const Schema schema = DomainSchema(domain);
    EXPECT_GE(schema.size(), 3u);
    const auto catalog = GenerateCatalog(domain, 20, &rng);
    ASSERT_EQ(catalog.size(), 20u);
    for (const auto& entity : catalog) {
      EXPECT_EQ(entity.values.size(), schema.size());
      EXPECT_FALSE(entity.values[IdentityAttribute(domain)].empty());
    }
  }
}

TEST(CatalogTest, SiblingKeepsGroupButChangesIdentity) {
  Rng rng(17);
  for (Domain domain :
       {Domain::kBibliographic, Domain::kSoftware, Domain::kProduct,
        Domain::kBeer, Domain::kSong, Domain::kRestaurant}) {
    const auto catalog = GenerateCatalog(domain, 10, &rng);
    for (const auto& entity : catalog) {
      const CatalogEntity sibling = MakeSibling(domain, entity, &rng);
      EXPECT_EQ(sibling.group, entity.group);
      EXPECT_NE(sibling.values, entity.values);
    }
  }
}

TEST(BenchmarkSpecsTest, TwelveDatasetsMatchTable2) {
  const auto& specs = BenchmarkSpecs();
  ASSERT_EQ(specs.size(), 12u);
  // Spot-check Table 2 statistics.
  const DatasetSpec* s_dg = FindSpec("S-DG");
  ASSERT_NE(s_dg, nullptr);
  EXPECT_EQ(s_dg->paper_size, 28707u);
  EXPECT_NEAR(s_dg->paper_match_percent, 18.63, 1e-9);
  const DatasetSpec* t_ab = FindSpec("T-AB");
  ASSERT_NE(t_ab, nullptr);
  EXPECT_EQ(t_ab->type, DatasetType::kTextual);
  EXPECT_TRUE(t_ab->long_description);
  EXPECT_EQ(FindSpec("NOPE"), nullptr);

  size_t dirty = 0;
  for (const auto& spec : specs) dirty += spec.type == DatasetType::kDirty;
  EXPECT_EQ(dirty, 4u);
}

TEST(BenchmarkGenTest, SizesAndMatchRates) {
  for (const char* id : {"S-DA", "S-FZ", "D-WA"}) {
    const DatasetSpec* spec = FindSpec(id);
    const Dataset dataset = GenerateDataset(*spec, 42, 1.0);
    EXPECT_EQ(dataset.size(), spec->default_size);
    EXPECT_NEAR(dataset.MatchPercent(), 100.0 * spec->match_fraction, 1.5)
        << id;
    EXPECT_EQ(dataset.schema.size(),
              spec->long_description ? 3u : DomainSchema(spec->domain).size());
  }
}

TEST(BenchmarkGenTest, DeterministicForSeed) {
  const Dataset a = GenerateById("S-IA", 77, 0.5);
  const Dataset b = GenerateById("S-IA", 77, 0.5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records[i].left.values, b.records[i].left.values);
    EXPECT_EQ(a.records[i].right.values, b.records[i].right.values);
    EXPECT_EQ(a.records[i].label, b.records[i].label);
  }
}

TEST(BenchmarkGenTest, DifferentSeedsDiffer) {
  const Dataset a = GenerateById("S-IA", 1, 0.3);
  const Dataset b = GenerateById("S-IA", 2, 0.3);
  bool any_difference = false;
  for (size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a.records[i].left.values != b.records[i].left.values;
  }
  EXPECT_TRUE(any_difference);
}

TEST(BenchmarkGenTest, ScaleControlsSize) {
  const DatasetSpec* spec = FindSpec("S-DG");
  EXPECT_NEAR(
      static_cast<double>(GenerateDataset(*spec, 1, 0.25).size()),
      0.25 * static_cast<double>(spec->default_size), 2.0);
  // Floor of 50 records.
  EXPECT_GE(GenerateDataset(*spec, 1, 0.001).size(), 50u);
}

TEST(BenchmarkGenTest, DirtyDatasetSpillsValues) {
  const Dataset dirty = GenerateById("D-DA", 42, 1.0);
  size_t empty_values = 0, total = 0;
  for (const auto& record : dirty.records) {
    for (size_t a = 1; a < record.left.values.size(); ++a) {
      ++total;
      empty_values += record.left.values[a].empty();
    }
  }
  // Spill empties a visible share of the non-identity attributes.
  EXPECT_GT(static_cast<double>(empty_values) / static_cast<double>(total),
            0.1);
}

TEST(BenchmarkGenTest, TextualDatasetHasLongDescriptions) {
  const Dataset textual = GenerateById("T-AB", 42, 0.3);
  double total_words = 0.0;
  for (const auto& record : textual.records) {
    total_words +=
        static_cast<double>(record.left.values[1].size());
  }
  EXPECT_GT(total_words / static_cast<double>(textual.size()), 80.0);
}

TEST(BenchmarkGenTest, SubsetPreservesSchema) {
  const Dataset dataset = GenerateById("S-FZ", 1, 0.1);
  const Dataset subset = Subset(dataset, {0, 2, 4}, "/sub");
  EXPECT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.schema, dataset.schema);
  EXPECT_EQ(subset.name, dataset.name + "/sub");
}

}  // namespace
}  // namespace wym::data
