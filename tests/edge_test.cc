// Edge cases across modules that the main suites do not pin down.

#include <gtest/gtest.h>

#include "baselines/similarity_features.h"
#include "core/feature_extractor.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/record.h"
#include "data/split.h"
#include "matching/stable_marriage.h"
#include "ml/metrics.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace wym {
namespace {

TEST(TokenizerEdgeTest, MultiDotNumbers) {
  const text::Tokenizer tokenizer;
  // "1.2.3" keeps digit-adjacent dots: a single version-like token.
  EXPECT_EQ(tokenizer.Tokenize("v 1.2.3"),
            (std::vector<std::string>{"v", "1.2.3"}));
  // Trailing dot is punctuation.
  EXPECT_EQ(tokenizer.Tokenize("end."), (std::vector<std::string>{"end"}));
  // Colon-separated times split (no digit-dot rule for ':').
  EXPECT_EQ(tokenizer.Tokenize("3:45"),
            (std::vector<std::string>{"3", "45"}));
}

TEST(TokenizerEdgeTest, ConsecutiveSeparators) {
  const text::Tokenizer tokenizer;
  // Note "a" alone would be removed as a stop word.
  EXPECT_EQ(tokenizer.Tokenize("x..y--c//d"),
            (std::vector<std::string>{"x", "y", "c", "d"}));
}

TEST(StableMarriageEdgeTest, ThresholdAboveEverything) {
  la::Matrix sim(3, 3, 0.4);
  EXPECT_TRUE(matching::StableMarriage(sim, 0.9).empty());
}

TEST(StableMarriageEdgeTest, MoreLeftsThanRights) {
  la::Matrix sim(5, 2, 0.8);
  const auto matching = matching::StableMarriage(sim, 0.5);
  EXPECT_EQ(matching.size(), 2u);  // One-to-one caps at min side.
}

TEST(ExplanationEdgeTest, RankIsStableUnderTies) {
  core::Explanation explanation;
  for (double impact : {0.5, -0.5, 0.5}) {
    explanation.units.push_back({{}, 0.0, impact});
  }
  const auto order = explanation.RankByImpactMagnitude();
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));  // stable_sort.
}

TEST(FeatureExtractorEdgeTest, EvenMedianSplitsAttribution) {
  const core::FeatureExtractor extractor(1, /*simplified=*/false);
  core::ScoredUnitSet set;
  for (double score : {0.1, 0.2, 0.3, 0.4}) {
    core::DecisionUnit unit;
    unit.paired = true;
    set.units.push_back(unit);
    set.scores.push_back(score);
  }
  size_t median_feature = 0;
  const auto& names = extractor.feature_names();
  for (size_t f = 0; f < names.size(); ++f) {
    if (names[f] == "all_median") median_feature = f;
  }
  // Value = mean of middle two; each contributes weight 0.5.
  const auto features = extractor.Extract(set);
  EXPECT_NEAR(features[median_feature], 0.25, 1e-12);
  const auto attribution = extractor.Attribution(set);
  double total_weight = 0.0;
  for (size_t u = 0; u < set.size(); ++u) {
    for (const auto& c : attribution[u]) {
      if (c.feature == median_feature) total_weight += c.weight;
    }
  }
  EXPECT_NEAR(total_weight, 1.0, 1e-12);
}

TEST(MetricsEdgeTest, ThresholdHelpersDegenerateInputs) {
  EXPECT_DOUBLE_EQ(ml::BestF1Threshold({}, {}), 0.5);
  const double threshold = ml::BestF1Threshold({0.3, 0.4}, {0, 0});
  EXPECT_GT(threshold, 0.0);
  EXPECT_LT(threshold, 1.0);
  // Degenerate thresholds are identity mappings.
  EXPECT_DOUBLE_EQ(ml::RecalibrateProba(0.7, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(ml::RecalibrateProba(0.7, 1.0), 0.7);
}

TEST(RngEdgeTest, ForkedStreamsDiverge) {
  Rng parent(1);
  Rng a(parent.Fork());
  Rng b(parent.Fork());
  bool differ = false;
  for (int i = 0; i < 16 && !differ; ++i) {
    differ = a.Uniform() != b.Uniform();
  }
  EXPECT_TRUE(differ);
}

TEST(DatasetEdgeTest, EmptySubset) {
  data::Dataset dataset;
  dataset.name = "d";
  dataset.schema = {{"a"}};
  const data::Dataset subset = data::Subset(dataset, {}, "/empty");
  EXPECT_EQ(subset.size(), 0u);
  EXPECT_DOUBLE_EQ(subset.MatchPercent(), 0.0);
}

TEST(SimilarityFeaturesEdgeTest, BothEmptyValues) {
  const auto features = baselines::AttributePairFeatures("", "");
  ASSERT_EQ(features.size(), baselines::kPerAttributeFeatures);
  EXPECT_DOUBLE_EQ(features.back(), 0.0);  // Both-present flag off.
  for (double f : features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
}

TEST(WymEdgeTest, RecordWithEmptyEntityStillPredicts) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 13, 0.2);
  const data::Split split = data::DefaultSplit(dataset, 13);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  data::EmRecord record = split.test.records.front();
  for (auto& value : record.right.values) value.clear();
  const double proba = model.PredictProba(record);
  EXPECT_GE(proba, 0.0);
  EXPECT_LE(proba, 1.0);
  // All surviving units are unpaired lefts.
  const core::Explanation explanation = model.Explain(record);
  for (const auto& eu : explanation.units) {
    EXPECT_FALSE(eu.unit.paired);
    EXPECT_EQ(eu.unit.unpaired_side, core::Side::kLeft);
  }
}

TEST(WymEdgeTest, BothEntitiesEmptyYieldNoUnits) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 13, 0.2);
  const data::Split split = data::DefaultSplit(dataset, 13);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  data::EmRecord record;
  record.left.values.assign(dataset.schema.size(), "");
  record.right.values.assign(dataset.schema.size(), "");
  const core::Explanation explanation = model.Explain(record);
  EXPECT_TRUE(explanation.units.empty());
  EXPECT_GE(explanation.probability, 0.0);
  EXPECT_LE(explanation.probability, 1.0);
}

}  // namespace
}  // namespace wym
