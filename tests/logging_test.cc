// Death tests for the always-on WYM_CHECK tier: the abort message must
// carry file:line plus the stringified condition (that text is the whole
// debugging story for a release-build abort), streamed context must be
// appended, and operands must be evaluated exactly once whether the
// check passes or fails.

#include <gtest/gtest.h>

#include "util/logging.h"

namespace {

int Identity(int value, int* evaluations) {
  ++*evaluations;
  return value;
}

TEST(WymCheckDeathTest, AbortsWithFileLineAndCondition) {
  EXPECT_DEATH(WYM_CHECK(1 == 2),
               "WYM_CHECK failed at .*logging_test.cc:[0-9]+: 1 == 2");
}

TEST(WymCheckDeathTest, StreamedContextIsAppended) {
  EXPECT_DEATH(WYM_CHECK(false) << "while frobbing" << 42,
               "false while frobbing 42");
}

TEST(WymCheckOpDeathTest, AbortsWithOperandExpressionText) {
  const int lhs = 3;
  const int rhs = 4;
  EXPECT_DEATH(WYM_CHECK_EQ(lhs, rhs),
               "WYM_CHECK failed at .*logging_test.cc:[0-9]+: lhs == rhs");
  EXPECT_DEATH(WYM_CHECK_GT(lhs, rhs), "lhs > rhs");
}

TEST(WymCheckTest, PassingCheckEvaluatesOperandsExactlyOnce) {
  int evaluations = 0;
  WYM_CHECK(Identity(1, &evaluations) == 1);
  EXPECT_EQ(evaluations, 1);

  evaluations = 0;
  WYM_CHECK_EQ(Identity(7, &evaluations), 7);
  EXPECT_EQ(evaluations, 1);

  evaluations = 0;
  WYM_CHECK_LE(Identity(1, &evaluations), Identity(2, &evaluations));
  EXPECT_EQ(evaluations, 2);
}

TEST(WymCheckOpDeathTest, FailingCheckEvaluatesOperandsExactlyOnce) {
  // The streamed context runs after the condition, so the counter value
  // it prints is the evaluation count at failure time.
  EXPECT_DEATH(
      {
        int evaluations = 0;
        WYM_CHECK_EQ(Identity(1, &evaluations), 2)
            << "evaluations=" << evaluations;
      },
      "evaluations= 1");
}

TEST(WymCheckTest, PassingChecksHaveNoSideEffectsOnControlFlow) {
  // A passing check must be a complete statement: usable bare inside an
  // if/else ladder without swallowing the else.
  int taken = 0;
  if (true) {
    WYM_CHECK(true);
    taken = 1;
  } else {
    taken = 2;
  }
  EXPECT_EQ(taken, 1);
}

}  // namespace
