#include <gtest/gtest.h>

#include "la/matrix.h"
#include "matching/stable_marriage.h"
#include "util/random.h"

namespace wym::matching {
namespace {

la::Matrix MakeSim(std::vector<std::vector<double>> rows) {
  la::Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows[i].size(); ++j) m.At(i, j) = rows[i][j];
  }
  return m;
}

TEST(StableMarriageTest, EmptyInputs) {
  EXPECT_TRUE(StableMarriage(la::Matrix(), 0.5).empty());
  EXPECT_TRUE(StableMarriage(la::Matrix(3, 0), 0.5).empty());
}

TEST(StableMarriageTest, PicksMutualBest) {
  const la::Matrix sim = MakeSim({{0.9, 0.1}, {0.2, 0.8}});
  const auto matching = StableMarriage(sim, 0.0);
  ASSERT_EQ(matching.size(), 2u);
  EXPECT_EQ(matching[0].left, 0u);
  EXPECT_EQ(matching[0].right, 0u);
  EXPECT_EQ(matching[1].left, 1u);
  EXPECT_EQ(matching[1].right, 1u);
}

TEST(StableMarriageTest, ThresholdTruncatesPreferences) {
  const la::Matrix sim = MakeSim({{0.9, 0.4}, {0.4, 0.45}});
  const auto matching = StableMarriage(sim, 0.5);
  ASSERT_EQ(matching.size(), 1u);
  EXPECT_EQ(matching[0].left, 0u);
  EXPECT_EQ(matching[0].right, 0u);
}

TEST(StableMarriageTest, ConflictResolvedByPreference) {
  // Both lefts prefer right 0; right 0 prefers left 1.
  const la::Matrix sim = MakeSim({{0.8, 0.6}, {0.9, 0.1}});
  const auto matching = StableMarriage(sim, 0.0);
  ASSERT_EQ(matching.size(), 2u);
  // left 1 wins right 0; left 0 falls back to right 1.
  EXPECT_EQ(matching[0].left, 0u);
  EXPECT_EQ(matching[0].right, 1u);
  EXPECT_EQ(matching[1].left, 1u);
  EXPECT_EQ(matching[1].right, 0u);
}

TEST(StableMarriageTest, OneToOneInvariant) {
  Rng rng(42);
  la::Matrix sim(7, 5);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 5; ++j) sim.At(i, j) = rng.Uniform();
  }
  const auto matching = StableMarriage(sim, 0.3);
  std::vector<bool> left_used(7, false), right_used(5, false);
  for (const auto& pair : matching) {
    EXPECT_FALSE(left_used[pair.left]);
    EXPECT_FALSE(right_used[pair.right]);
    left_used[pair.left] = true;
    right_used[pair.right] = true;
    EXPECT_GE(pair.similarity, 0.3);
  }
}

TEST(StableMarriageTest, ResultIsStable) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    la::Matrix sim(6, 6);
    for (size_t i = 0; i < 6; ++i) {
      for (size_t j = 0; j < 6; ++j) sim.At(i, j) = rng.Uniform();
    }
    const auto matching = StableMarriage(sim, 0.2);
    EXPECT_TRUE(IsStableMatching(sim, 0.2, matching)) << "trial " << trial;
  }
}

TEST(StableMarriageTest, SimilarityStoredMatchesMatrix) {
  const la::Matrix sim = MakeSim({{0.7}});
  const auto matching = StableMarriage(sim, 0.5);
  ASSERT_EQ(matching.size(), 1u);
  EXPECT_DOUBLE_EQ(matching[0].similarity, 0.7);
}

TEST(StableMarriageTest, DeterministicOnTies) {
  const la::Matrix sim = MakeSim({{0.5, 0.5}, {0.5, 0.5}});
  const auto a = StableMarriage(sim, 0.4);
  const auto b = StableMarriage(sim, 0.4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left, b[i].left);
    EXPECT_EQ(a[i].right, b[i].right);
  }
}

TEST(IsStableMatchingTest, DetectsBlockingPair) {
  const la::Matrix sim = MakeSim({{0.9, 0.1}, {0.2, 0.8}});
  // Cross assignment is unstable: (0,0) is a blocking pair.
  const std::vector<MatchedPair> crossed = {{0, 1, 0.1}, {1, 0, 0.2}};
  EXPECT_FALSE(IsStableMatching(sim, 0.0, crossed));
}

TEST(IsStableMatchingTest, RejectsDuplicateAssignments) {
  const la::Matrix sim = MakeSim({{0.9, 0.8}});
  const std::vector<MatchedPair> doubled = {{0, 0, 0.9}, {0, 1, 0.8}};
  EXPECT_FALSE(IsStableMatching(sim, 0.0, doubled));
}

}  // namespace
}  // namespace wym::matching
