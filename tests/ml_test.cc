#include <gtest/gtest.h>

#include <cmath>

#include "ml/boosting.h"
#include "ml/classifier_pool.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/lda.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/scaler.h"
#include "ml/tree.h"
#include "util/random.h"

namespace wym::ml {
namespace {

/// Two-gaussian binary problem: feature 0 is informative (positive for
/// class 1), feature 1 is mildly informative with a negative direction,
/// feature 2 is pure noise.
struct Problem {
  la::Matrix x;
  std::vector<int> y;
};

Problem MakeProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  Problem p{la::Matrix(n, 3), std::vector<int>(n)};
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    p.y[i] = label;
    p.x.At(i, 0) = rng.Normal(label == 1 ? 1.0 : -1.0, 0.6);
    p.x.At(i, 1) = rng.Normal(label == 1 ? -0.5 : 0.5, 0.6);
    p.x.At(i, 2) = rng.Normal(0.0, 1.0);
  }
  return p;
}

double TrainAccuracy(Classifier* classifier, const Problem& p) {
  classifier->Fit(p.x, p.y);
  return Accuracy(p.y, classifier->PredictBatch(p.x));
}

// ---------------------------------------------------------------------
// Parameterized sweep over the full pool (paper §4.3: ten classifiers).
// ---------------------------------------------------------------------

class PoolTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PoolTest, FactoryProducesNamedClassifier) {
  auto classifier = MakeClassifier(GetParam(), /*seed=*/1);
  ASSERT_NE(classifier, nullptr);
  EXPECT_EQ(classifier->name(), GetParam());
}

TEST_P(PoolTest, LearnsSeparableProblem) {
  auto classifier = MakeClassifier(GetParam(), 1);
  const Problem p = MakeProblem(400, 7);
  EXPECT_GT(TrainAccuracy(classifier.get(), p), 0.85) << GetParam();
}

TEST_P(PoolTest, ProbabilitiesAreValid) {
  auto classifier = MakeClassifier(GetParam(), 1);
  const Problem p = MakeProblem(200, 3);
  classifier->Fit(p.x, p.y);
  for (size_t i = 0; i < 50; ++i) {
    const double proba = classifier->PredictProba(p.x.RowVector(i));
    EXPECT_GE(proba, 0.0) << GetParam();
    EXPECT_LE(proba, 1.0) << GetParam();
  }
}

TEST_P(PoolTest, SignedImportanceFollowsFeatureDirection) {
  auto classifier = MakeClassifier(GetParam(), 1);
  const Problem p = MakeProblem(400, 11);
  classifier->Fit(p.x, p.y);
  const std::vector<double> importance = classifier->SignedImportance();
  ASSERT_EQ(importance.size(), 3u) << GetParam();
  // Feature 0 pushes toward class 1, feature 1 away from it.
  EXPECT_GT(importance[0], 0.0) << GetParam();
  EXPECT_LT(importance[1], 0.0) << GetParam();
  EXPECT_GT(std::fabs(importance[0]), std::fabs(importance[2]))
      << GetParam();
}

TEST_P(PoolTest, RefitIsDeterministic) {
  const Problem p = MakeProblem(150, 21);
  auto a = MakeClassifier(GetParam(), 5);
  auto b = MakeClassifier(GetParam(), 5);
  a->Fit(p.x, p.y);
  b->Fit(p.x, p.y);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(a->PredictProba(p.x.RowVector(i)),
                     b->PredictProba(p.x.RowVector(i)))
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPoolMembers, PoolTest,
                         ::testing::ValuesIn(PoolMemberNames()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Classifier-specific behaviour.
// ---------------------------------------------------------------------

TEST(PoolFactoryTest, HasTenMembers) {
  EXPECT_EQ(PoolMemberNames().size(), 10u);
  EXPECT_EQ(MakePool(1).size(), 10u);
  EXPECT_EQ(MakeClassifier("nonsense", 1), nullptr);
}

TEST(LogisticRegressionTest, CoefficientsRecoverSigns) {
  LogisticRegression lr;
  const Problem p = MakeProblem(600, 2);
  lr.Fit(p.x, p.y);
  EXPECT_TRUE(lr.IsLinear());
  const auto w = lr.SignedImportance();
  EXPECT_GT(w[0], 0.0);
  EXPECT_LT(w[1], 0.0);
}

TEST(LinearDiscriminantTest, HandlesSingleClassGracefully) {
  LinearDiscriminant lda;
  la::Matrix x(10, 2, 1.0);
  std::vector<int> y(10, 1);
  lda.Fit(x, y);
  EXPECT_GT(lda.PredictProba({1.0, 1.0}), 0.9);
}

TEST(KnnTest, NearestNeighborWins) {
  KNearestNeighbors::Options options;
  options.k = 1;
  KNearestNeighbors knn(options);
  la::Matrix x(2, 1);
  x.At(0, 0) = 0.0;
  x.At(1, 0) = 10.0;
  knn.Fit(x, {0, 1});
  EXPECT_LT(knn.PredictProba({1.0}), 0.5);
  EXPECT_GT(knn.PredictProba({9.0}), 0.5);
}

TEST(DecisionTreeTest, PureSplitOnThreshold) {
  DecisionTreeClassifier dt;
  la::Matrix x(20, 1);
  std::vector<int> y(20);
  for (size_t i = 0; i < 20; ++i) {
    x.At(i, 0) = static_cast<double>(i);
    y[i] = i < 10 ? 0 : 1;
  }
  dt.Fit(x, y);
  EXPECT_LT(dt.PredictProba({3.0}), 0.1);
  EXPECT_GT(dt.PredictProba({15.0}), 0.9);
}

TEST(NaiveBayesTest, RespectsClassPriors) {
  GaussianNaiveBayes nb;
  // 90% negatives at the same location: prior should dominate at the
  // midpoint.
  la::Matrix x(100, 1);
  std::vector<int> y(100);
  Rng rng(4);
  for (size_t i = 0; i < 100; ++i) {
    y[i] = i < 10 ? 1 : 0;
    x.At(i, 0) = rng.Normal(0.0, 1.0);
  }
  nb.Fit(x, y);
  EXPECT_LT(nb.PredictProba({0.0}), 0.5);
}

TEST(LinearSvmTest, SeparatesWithMargin) {
  LinearSvm svm;
  const Problem p = MakeProblem(400, 6);
  svm.Fit(p.x, p.y);
  EXPECT_TRUE(svm.IsLinear());
  EXPECT_GT(Accuracy(p.y, svm.PredictBatch(p.x)), 0.85);
}

TEST(AdaBoostTest, BeatsSingleStumpOnInterval) {
  // y = 1 inside an interval of x0: one stump can only cut once, boosting
  // combines cuts from both sides.
  Rng rng(8);
  la::Matrix x(300, 2);
  std::vector<int> y(300);
  for (size_t i = 0; i < 300; ++i) {
    x.At(i, 0) = rng.Uniform(-1, 1);
    x.At(i, 1) = rng.Uniform(-1, 1);
    y[i] = (std::fabs(x.At(i, 0)) < 0.4) ? 1 : 0;
  }
  DecisionTreeClassifier::Options stump_options;
  stump_options.tree.max_depth = 1;
  DecisionTreeClassifier stump(stump_options);
  stump.Fit(x, y);
  AdaBoostClassifier ab;
  ab.Fit(x, y);
  EXPECT_GT(Accuracy(y, ab.PredictBatch(x)),
            Accuracy(y, stump.PredictBatch(x)) + 0.1);
}

TEST(GradientBoostingTest, MoreEstimatorsFitBetter) {
  const Problem p = MakeProblem(300, 13);
  GradientBoostingClassifier::Options small;
  small.n_estimators = 2;
  GradientBoostingClassifier::Options large;
  large.n_estimators = 60;
  GradientBoostingClassifier a(small), b(large);
  a.Fit(p.x, p.y);
  b.Fit(p.x, p.y);
  EXPECT_GE(Accuracy(p.y, b.PredictBatch(p.x)),
            Accuracy(p.y, a.PredictBatch(p.x)));
}

TEST(ForestTest, EnsembleSmoothsSingleTree) {
  const Problem p = MakeProblem(300, 19);
  RandomForestClassifier rf;
  rf.Fit(p.x, p.y);
  ExtraTreesClassifier et;
  et.Fit(p.x, p.y);
  EXPECT_GT(Accuracy(p.y, rf.PredictBatch(p.x)), 0.85);
  EXPECT_GT(Accuracy(p.y, et.PredictBatch(p.x)), 0.85);
}

TEST(RegressionTreeTest, WeightedSamplesShiftLeaf) {
  // Two points with conflicting targets: the heavier one wins the mean.
  RegressionTree tree(TreeOptions{.max_depth = 0,
                                  .min_samples_leaf = 1,
                                  .min_samples_split = 2,
                                  .max_features = 0,
                                  .random_thresholds = false});
  la::Matrix x(2, 1);
  x.At(0, 0) = 0.0;
  x.At(1, 0) = 0.0;
  Rng rng(1);
  tree.Fit(x, {0.0, 1.0}, {1.0, 3.0}, {0, 1}, &rng);
  EXPECT_NEAR(tree.Predict({0.0}), 0.75, 1e-9);
}

// ---------------------------------------------------------------------
// Metrics, scaler, calibration.
// ---------------------------------------------------------------------

TEST(MetricsTest, KnownConfusion) {
  const std::vector<int> truth = {1, 1, 1, 0, 0, 0, 0, 0};
  const std::vector<int> predicted = {1, 1, 0, 1, 0, 0, 0, 0};
  const Confusion c = Confuse(truth, predicted);
  EXPECT_EQ(c.true_positive, 2u);
  EXPECT_EQ(c.false_negative, 1u);
  EXPECT_EQ(c.false_positive, 1u);
  EXPECT_EQ(c.true_negative, 4u);
  EXPECT_NEAR(Precision(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Recall(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(F1(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Accuracy(truth, predicted), 0.75, 1e-12);
}

TEST(MetricsTest, DegenerateCasesAreZero) {
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(F1Score({1, 1}, {0, 0}), 0.0);
}

TEST(MetricsTest, PerfectF1) {
  EXPECT_DOUBLE_EQ(F1Score({1, 0, 1}, {1, 0, 1}), 1.0);
}

TEST(ThresholdTest, FindsSeparatingThreshold) {
  // Positives live at 0.3+, negatives below 0.25: 0.5 would miss all
  // positives; the calibrated threshold must not.
  const std::vector<double> probas = {0.1, 0.2, 0.15, 0.22, 0.3, 0.35, 0.4};
  const std::vector<int> labels = {0, 0, 0, 0, 1, 1, 1};
  const double threshold = BestF1Threshold(probas, labels);
  EXPECT_GT(threshold, 0.22);
  EXPECT_LE(threshold, 0.3);
}

TEST(ThresholdTest, RecalibrationIsMonotoneAndAnchored) {
  const double threshold = 0.2;
  EXPECT_NEAR(RecalibrateProba(threshold, threshold), 0.5, 1e-12);
  EXPECT_NEAR(RecalibrateProba(0.0, threshold), 0.0, 1e-12);
  EXPECT_NEAR(RecalibrateProba(1.0, threshold), 1.0, 1e-12);
  double previous = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double mapped = RecalibrateProba(p, threshold);
    EXPECT_GT(mapped, previous);
    previous = mapped;
  }
}

TEST(ScalerTest, StandardizesAndInverts) {
  la::Matrix x(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    x.At(i, 0) = static_cast<double>(i);  // Mean 1.5.
    x.At(i, 1) = 7.0;                     // Constant column.
  }
  StandardScaler scaler;
  scaler.Fit(x);
  const la::Matrix scaled = scaler.Transform(x);
  double mean = 0.0;
  for (size_t i = 0; i < 4; ++i) mean += scaled.At(i, 0);
  EXPECT_NEAR(mean, 0.0, 1e-12);
  // Constant columns pass through with scale 1.
  EXPECT_DOUBLE_EQ(scaler.scale()[1], 1.0);
  EXPECT_DOUBLE_EQ(scaled.At(0, 1), 0.0);

  // Raw coefficients: w_raw = w_scaled / sigma.
  const auto raw = scaler.RawCoefficients({2.0, 3.0});
  EXPECT_NEAR(raw[0], 2.0 / scaler.scale()[0], 1e-12);
  EXPECT_DOUBLE_EQ(raw[1], 3.0);
}

TEST(SurrogateImportanceTest, RecoversSlopeSign) {
  la::Matrix x(50, 2);
  std::vector<double> probas(50);
  Rng rng(2);
  for (size_t i = 0; i < 50; ++i) {
    x.At(i, 0) = rng.Uniform(-1, 1);
    x.At(i, 1) = rng.Uniform(-1, 1);
    const double logit = 2.0 * x.At(i, 0) - 1.0 * x.At(i, 1);
    probas[i] = 1.0 / (1.0 + std::exp(-logit));
  }
  const auto importance = internal::SurrogateImportance(x, probas);
  EXPECT_GT(importance[0], 0.0);
  EXPECT_LT(importance[1], 0.0);
  EXPECT_GT(importance[0], std::fabs(importance[1]) * 0.8);
}

}  // namespace
}  // namespace wym::ml
