// Robustness suite for the serving stack (src/serve): protocol
// round-trips, the bounded-admission / deadline / watchdog / drain
// contract of MatcherService, prediction-cache keying across model
// generations, hot load/retire through the registry (corrupt files
// rejected while the old model keeps serving), and the socket seam
// under scripted faults (short reads/writes, EINTR, mid-message
// disconnects — typed error or clean close, never a crash or hang).
//
// The headline acceptance property lives in
// ServiceTest.OverloadShedsExactlyTheExcess: with queue bound N and 4N
// concurrent requests, exactly 3N are shed with ResourceExhausted and
// every admitted request is answered with probabilities identical to
// the offline PredictProbaBatch — deterministically, at any
// WYM_THREADS, clean under TSan.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/window.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/socket_io.h"
#include "util/io.h"
#include "util/thread_pool.h"
#include "util/status.h"

namespace wym {
namespace {

using serve::LineChannel;
using serve::MatcherService;
using serve::ModelRegistry;
using serve::Request;
using serve::Response;
using serve::ServiceOptions;

// ---------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, RequestRoundTrips) {
  Request request;
  request.op = Request::Op::kPredict;
  request.id = "r-1";
  request.model = "catalog";
  request.explain = true;
  request.deadline_ms = 250;
  data::EmRecord pair;
  pair.left.values = {"iphone \"4s\"", "black"};
  pair.right.values = {"iphone 4s", ""};
  request.pairs.push_back(pair);

  auto parsed = serve::ParseRequest(serve::RenderRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Request& back = parsed.value();
  EXPECT_EQ(back.op, Request::Op::kPredict);
  EXPECT_EQ(back.id, "r-1");
  EXPECT_EQ(back.model, "catalog");
  EXPECT_TRUE(back.explain);
  EXPECT_EQ(back.deadline_ms, 250u);
  ASSERT_EQ(back.pairs.size(), 1u);
  EXPECT_EQ(back.pairs[0].left.values, pair.left.values);
  EXPECT_EQ(back.pairs[0].right.values, pair.right.values);
}

TEST(ProtocolTest, MalformedRequestsAreTypedErrors) {
  for (const char* line : {
           "not json at all",
           "[1,2,3]",
           "{\"op\":\"fly_to_the_moon\"}",
           "{\"op\":\"predict\"}",                    // No pairs.
           "{\"op\":\"load_model\",\"name\":\"m\"}",  // No path.
           "{\"op\":\"retire_model\"}",               // No name.
           "{\"op\":\"predict\",\"pairs\":[{\"left\":[1]}]}",
       }) {
    auto parsed = serve::ParseRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument)
        << line;
  }
}

TEST(ProtocolTest, ErrorResponsesCarryTheStatusCodeAcrossTheWire) {
  const Status statuses[] = {
      Status::ResourceExhausted("queue full"),
      Status::DeadlineExceeded("too slow"),
      Status::Corruption("bad frame"),
      Status::NotFound("no model"),
  };
  for (const Status& status : statuses) {
    Response response;
    response.id = "x";
    response.op = "predict";
    response.status = status;
    auto parsed = serve::ParseResponse(serve::RenderResponse(response));
    ASSERT_TRUE(parsed.ok()) << status.ToString();
    EXPECT_EQ(parsed.value().status.code(), status.code());
    EXPECT_EQ(parsed.value().status.message(), status.message());
    EXPECT_EQ(parsed.value().id, "x");
  }
}

TEST(ProtocolTest, ResponseResultsAndPayloadRoundTrip) {
  Response response;
  response.id = "q";
  response.op = "predict";
  response.model = "default";
  serve::PairResult result;
  result.prediction = 1;
  result.probability = 0.123456789123456789;
  result.cached = true;
  result.explanation_json = "{\"prediction\":1,\"units\":[]}";
  response.results.push_back(result);
  response.payload_json = "{\"models\":[\"a\",\"b\"]}";

  auto parsed = serve::ParseResponse(serve::RenderResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Response& back = parsed.value();
  ASSERT_EQ(back.results.size(), 1u);
  EXPECT_EQ(back.results[0].prediction, 1);
  // RenderDouble guarantees exact round-trip.
  EXPECT_EQ(back.results[0].probability, result.probability);
  EXPECT_TRUE(back.results[0].cached);
  EXPECT_EQ(back.results[0].explanation_json, result.explanation_json);
  EXPECT_EQ(back.payload_json, response.payload_json);
}

// ---------------------------------------------------------------------
// Prediction cache keys

TEST(PredictionCacheTest, FingerprintIsPositionSensitive) {
  data::Entity ab;
  ab.values = {"a", "b"};
  data::Entity ba;
  ba.values = {"b", "a"};
  data::Entity joined;
  joined.values = {"ab", ""};
  EXPECT_NE(serve::FingerprintEntity(ab), serve::FingerprintEntity(ba));
  EXPECT_NE(serve::FingerprintEntity(ab), serve::FingerprintEntity(joined));
  EXPECT_EQ(serve::FingerprintEntity(ab), serve::FingerprintEntity(ab));
}

TEST(PredictionCacheTest, KeySeparatesModelsAndGenerations) {
  data::EmRecord pair;
  pair.left.values = {"a"};
  pair.right.values = {"b"};
  const serve::PredictionKey gen1 = serve::MakePredictionKey(pair, "m#1");
  const serve::PredictionKey gen2 = serve::MakePredictionKey(pair, "m#2");
  EXPECT_FALSE(gen1 == gen2);
  EXPECT_TRUE(gen1 == serve::MakePredictionKey(pair, "m#1"));
}

// ---------------------------------------------------------------------
// Shared fixture: one trained model on disk

struct Suite {
  data::Dataset dataset;
  data::Split split;
  std::string model_path;
  std::string corrupt_path;
  /// Offline reference: the model as the service will see it (loaded
  /// back from the file), for exact-equality comparisons.
  std::unique_ptr<core::WymModel> loaded;
};

class ServeFixtureTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto s = std::make_unique<Suite>();
    s->dataset = data::GenerateById("S-FZ", 42, 0.3);
    s->split = data::DefaultSplit(s->dataset, 42);
    core::WymModel model;
    model.Fit(s->split.train, s->split.validation);

    const std::string prefix = testing::TempDir() + "/wym_serve_test." +
                               std::to_string(::getpid());
    s->model_path = prefix + ".model.wym";
    if (!model.SaveToFile(s->model_path).ok()) return;

    // A damaged copy: one flipped byte in the middle of the file.
    std::string bytes;
    if (!io::ReadFileToString(s->model_path, &bytes).ok()) return;
    if (bytes.size() < 200) return;
    bytes[bytes.size() / 2] ^= 0x40;
    s->corrupt_path = prefix + ".corrupt.wym";
    if (!io::WriteFileAtomic(s->corrupt_path, bytes).ok()) return;

    auto loaded = core::WymModel::LoadFromFile(s->model_path);
    if (!loaded.ok()) return;
    s->loaded = std::make_unique<core::WymModel>(std::move(loaded).value());
    suite_ = std::move(s);
  }

  static void TearDownTestSuite() {
    if (suite_ != nullptr) {
      std::remove(suite_->model_path.c_str());
      std::remove(suite_->corrupt_path.c_str());
    }
    suite_.reset();
  }

  void SetUp() override {
    ASSERT_NE(suite_, nullptr) << "shared fixture failed to build";
  }

  static const data::EmRecord& TestPair(size_t i) {
    return suite_->split.test.records[i % suite_->split.test.size()];
  }

  static Request PredictRequest(size_t pair_index, const std::string& id) {
    Request request;
    request.op = Request::Op::kPredict;
    request.id = id;
    request.pairs.push_back(TestPair(pair_index));
    return request;
  }

  /// Offline reference probability, computed with the same call shape
  /// the service uses (a batch of exactly these records).
  static std::vector<double> Offline(
      const std::vector<data::EmRecord>& records) {
    core::PredictionReport report;
    return suite_->loaded->PredictProbaBatch(records, &report, nullptr);
  }

  static std::unique_ptr<Suite> suite_;
};

std::unique_ptr<Suite> ServeFixtureTest::suite_;

// ---------------------------------------------------------------------
// Model registry

class ModelRegistryTest : public ServeFixtureTest {};

TEST_F(ModelRegistryTest, LoadGetRetireAndGenerations) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Get("default").model, nullptr);
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ASSERT_TRUE(registry.LoadModel("beta", suite_->model_path).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"beta", "default"}));

  const serve::RegisteredModel first = registry.Get("default");
  ASSERT_NE(first.model, nullptr);
  // Empty name resolves to "default".
  EXPECT_EQ(registry.Get("").model, first.model);

  // Hot reload bumps the generation (cache poisoning across reloads).
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  const serve::RegisteredModel second = registry.Get("default");
  EXPECT_GT(second.generation, first.generation);

  EXPECT_TRUE(registry.Retire("beta").ok());
  EXPECT_EQ(registry.Retire("beta").code(), Status::Code::kNotFound);
  EXPECT_EQ(registry.size(), 1u);
}

TEST_F(ModelRegistryTest, CorruptModelRejectedOldModelKeepsServing) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("m", suite_->model_path).ok());
  const serve::RegisteredModel before = registry.Get("m");
  ASSERT_NE(before.model, nullptr);

  const Status status = registry.LoadModel("m", suite_->corrupt_path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption)
      << status.ToString();

  // All-or-nothing: the registry still serves the previous model,
  // untouched (same pointer, same generation).
  const serve::RegisteredModel after = registry.Get("m");
  EXPECT_EQ(after.model, before.model);
  EXPECT_EQ(after.generation, before.generation);
}

TEST_F(ModelRegistryTest, ConfigFileLoadsAllOrFailsFast) {
  ModelRegistry registry;
  const std::string config_path = testing::TempDir() + "/wym_serve_test." +
                                  std::to_string(::getpid()) + ".conf";
  ASSERT_TRUE(io::WriteFileAtomic(
                  config_path,
                  "# serving catalog\n"
                  "default=" + suite_->model_path + "\n"
                  "\n"
                  "beta=" + suite_->model_path + "\n")
                  .ok());
  EXPECT_TRUE(registry.LoadConfigFile(config_path).ok());
  EXPECT_EQ(registry.size(), 2u);

  ASSERT_TRUE(io::WriteFileAtomic(config_path, "just-a-name-no-path\n").ok());
  EXPECT_EQ(registry.LoadConfigFile(config_path).code(),
            Status::Code::kInvalidArgument);

  ASSERT_TRUE(
      io::WriteFileAtomic(config_path,
                          "bad=" + suite_->corrupt_path + "\n").ok());
  EXPECT_EQ(registry.LoadConfigFile(config_path).code(),
            Status::Code::kCorruption);
  std::remove(config_path.c_str());
}

// ---------------------------------------------------------------------
// MatcherService

class ServiceTest : public ServeFixtureTest {
 protected:
  /// A responder that appends into a mutex-guarded log.
  struct ResponseLog {
    std::mutex mu;
    std::vector<Response> responses;

    MatcherService::Responder Sink() {
      return [this](const Response& response) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(response);
      };
    }

    size_t size() {
      std::lock_guard<std::mutex> lock(mu);
      return responses.size();
    }
  };
};

TEST_F(ServiceTest, OverloadShedsExactlyTheExcess) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());

  constexpr size_t kBound = 4;
  constexpr size_t kTotal = 4 * kBound;  // 4N concurrent requests.
  ServiceOptions options;
  options.queue_bound = kBound;
  options.auto_dispatch = false;  // Admission race only; execution later.
  MatcherService service(&registry, options);

  ResponseLog log;
  std::atomic<size_t> admitted{0};
  std::atomic<size_t> shed{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kTotal / 4; ++i) {
        const size_t request_index = t * (kTotal / 4) + i;
        const Status status = service.Admit(
            PredictRequest(request_index, "r" + std::to_string(request_index)),
            log.Sink());
        if (status.ok()) {
          admitted.fetch_add(1);
        } else {
          ASSERT_EQ(status.code(), Status::Code::kResourceExhausted);
          shed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Exactly the excess is shed, regardless of interleaving.
  EXPECT_EQ(admitted.load(), kBound);
  EXPECT_EQ(shed.load(), kTotal - kBound);
  // Every shed request was already answered with the typed error.
  EXPECT_EQ(log.size(), kTotal - kBound);
  EXPECT_EQ(service.queue_depth(), kBound);

  // Execute the backlog; every admitted request gets its answer.
  EXPECT_EQ(service.ProcessQueued(), kBound);
  EXPECT_EQ(log.size(), kTotal);
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.in_flight(), 0u);

  // Admitted answers equal the offline batch, value for value.
  size_t ok_answers = 0;
  for (const Response& response : log.responses) {
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), Status::Code::kResourceExhausted);
      continue;
    }
    ++ok_answers;
    ASSERT_EQ(response.results.size(), 1u);
    const size_t request_index =
        static_cast<size_t>(std::stoul(response.id.substr(1)));
    const std::vector<double> offline = Offline({TestPair(request_index)});
    EXPECT_EQ(response.results[0].probability, offline[0]) << response.id;
    EXPECT_EQ(response.results[0].prediction, offline[0] >= 0.5 ? 1 : 0);
  }
  EXPECT_EQ(ok_answers, kBound);
}

TEST_F(ServiceTest, BatchAnswersMatchOfflineExactly) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  options.cache_entries = 0;  // Pure compute path.
  MatcherService service(&registry, options);

  Request request;
  request.op = Request::Op::kPredict;
  request.id = "batch";
  std::vector<data::EmRecord> records;
  for (size_t i = 0; i < suite_->split.test.size(); ++i) {
    request.pairs.push_back(suite_->split.test.records[i]);
    records.push_back(suite_->split.test.records[i]);
  }

  ResponseLog log;
  ASSERT_TRUE(service.Admit(request, log.Sink()).ok());
  EXPECT_EQ(service.ProcessQueued(), 1u);
  ASSERT_EQ(log.size(), 1u);
  const Response& response = log.responses[0];
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  const std::vector<double> offline = Offline(records);
  ASSERT_EQ(response.results.size(), offline.size());
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ(response.results[i].probability, offline[i]) << i;
  }
}

TEST_F(ServiceTest, DeadlineExpiredInQueueIsAnsweredNotDropped) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  uint64_t fake_now = 1;
  ServiceOptions options;
  options.auto_dispatch = false;
  options.now_ns = [&fake_now] { return fake_now; };
  MatcherService service(&registry, options);

  Request request = PredictRequest(0, "late");
  request.deadline_ms = 10;
  ResponseLog log;
  ASSERT_TRUE(service.Admit(request, log.Sink()).ok());

  fake_now += 11 * 1000000ull;  // The request ages out in the queue.
  EXPECT_EQ(service.ProcessQueued(), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.responses[0].status.code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(log.responses[0].id, "late");
}

TEST_F(ServiceTest, MidBatchDeadlineReportsProgress) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  // The fake clock advances 4ms per reading, so a 10ms budget survives
  // the dequeue check and the first slice boundary, then expires.
  uint64_t fake_now = 0;
  ServiceOptions options;
  options.auto_dispatch = false;
  options.deadline_slice_pairs = 1;
  options.cache_entries = 0;
  options.now_ns = [&fake_now] {
    fake_now += 4 * 1000000ull;
    return fake_now;
  };
  MatcherService service(&registry, options);

  Request request;
  request.op = Request::Op::kPredict;
  request.id = "sliced";
  request.deadline_ms = 10;
  for (size_t i = 0; i < 8; ++i) request.pairs.push_back(TestPair(i));

  ResponseLog log;
  ASSERT_TRUE(service.Admit(request, log.Sink()).ok());
  EXPECT_EQ(service.ProcessQueued(), 1u);
  ASSERT_EQ(log.size(), 1u);
  const Response& response = log.responses[0];
  EXPECT_EQ(response.status.code(), Status::Code::kDeadlineExceeded);
  // The error names how far the batch got: "after k of 8 pairs".
  EXPECT_NE(response.status.message().find("of 8 pairs"),
            std::string::npos)
      << response.status.message();
}

TEST_F(ServiceTest, CacheHitsAndGenerationPoisoning) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  MatcherService service(&registry, options);

  ResponseLog log;
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(
        service.Admit(PredictRequest(0, "c" + std::to_string(round)),
                      log.Sink())
            .ok());
    EXPECT_EQ(service.ProcessQueued(), 1u);
  }
  ASSERT_EQ(log.size(), 2u);
  ASSERT_TRUE(log.responses[0].status.ok());
  ASSERT_TRUE(log.responses[1].status.ok());
  EXPECT_FALSE(log.responses[0].results[0].cached);
  EXPECT_TRUE(log.responses[1].results[0].cached);
  EXPECT_EQ(log.responses[0].results[0].probability,
            log.responses[1].results[0].probability);

  // Hot-reloading the model bumps its generation: the old cache entry
  // can never answer for the new model.
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ASSERT_TRUE(service.Admit(PredictRequest(0, "c2"), log.Sink()).ok());
  EXPECT_EQ(service.ProcessQueued(), 1u);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_FALSE(log.responses[2].results[0].cached);
}

TEST_F(ServiceTest, ExplainRequestsCarryExplanationJson) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  MatcherService service(&registry, options);

  Request request = PredictRequest(0, "ex");
  request.explain = true;
  ResponseLog log;
  ASSERT_TRUE(service.Admit(request, log.Sink()).ok());
  EXPECT_EQ(service.ProcessQueued(), 1u);
  ASSERT_EQ(log.size(), 1u);
  ASSERT_TRUE(log.responses[0].status.ok());
  ASSERT_EQ(log.responses[0].results.size(), 1u);
  EXPECT_NE(log.responses[0].results[0].explanation_json.find("units"),
            std::string::npos);
}

TEST_F(ServiceTest, UnknownModelIsNotFoundAndRaggedPairsAreNormalized) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  MatcherService service(&registry, options);

  Request request = PredictRequest(0, "missing");
  request.model = "nope";
  ResponseLog log;
  ASSERT_TRUE(service.Admit(request, log.Sink()).ok());
  EXPECT_EQ(service.ProcessQueued(), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.responses[0].status.code(), Status::Code::kNotFound);

  // A ragged pair (wrong attribute count) is normalized, not a crash
  // and not an error: the robustness contract prefers a degraded
  // answer over a refused one.
  Request ragged;
  ragged.op = Request::Op::kPredict;
  ragged.id = "ragged";
  data::EmRecord pair;
  pair.left.values = {"only-one-value"};
  pair.right.values = {"a", "b", "c", "d", "e", "f", "g", "h"};
  ragged.pairs.push_back(pair);
  ASSERT_TRUE(service.Admit(ragged, log.Sink()).ok());
  EXPECT_EQ(service.ProcessQueued(), 1u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.responses[1].status.ok())
      << log.responses[1].status.ToString();
  ASSERT_EQ(log.responses[1].results.size(), 1u);
  EXPECT_GE(log.responses[1].results[0].probability, 0.0);
  EXPECT_LE(log.responses[1].results[0].probability, 1.0);
}

TEST_F(ServiceTest, DrainShedsNewWorkAndFinishesBacklog) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  MatcherService service(&registry, options);

  ResponseLog log;
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        service.Admit(PredictRequest(i, "d" + std::to_string(i)), log.Sink())
            .ok());
  }
  service.BeginDrain();
  EXPECT_TRUE(service.draining());

  // New work is shed with the typed "draining" error...
  const Status late = service.Admit(PredictRequest(9, "late"), log.Sink());
  EXPECT_EQ(late.code(), Status::Code::kResourceExhausted);
  EXPECT_NE(late.message().find("draining"), std::string::npos);

  // ...but introspection still answers (stats during drain).
  Request stats;
  stats.op = Request::Op::kStats;
  stats.id = "stats";
  EXPECT_TRUE(service.Admit(stats, log.Sink()).ok());

  // Drain finishes the backlog: zero in-flight losses.
  service.Drain();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.in_flight(), 0u);
  // 3 backlog answers + 1 shed + 1 stats = every request answered once.
  EXPECT_EQ(log.size(), 5u);
  size_t ok = 0;
  for (const Response& response : log.responses) {
    if (response.status.ok()) ++ok;
  }
  EXPECT_EQ(ok, 4u);  // 3 predictions + stats.
}

TEST_F(ServiceTest, ShutdownOpBeginsDrain) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  MatcherService service(&registry, options);

  ResponseLog log;
  Request shutdown;
  shutdown.op = Request::Op::kShutdown;
  EXPECT_TRUE(service.Admit(shutdown, log.Sink()).ok());
  EXPECT_TRUE(service.draining());
  EXPECT_EQ(log.size(), 1u);
}

TEST_F(ServiceTest, DebugOpsAreGatedByDefault) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  MatcherService service(&registry, options);

  ResponseLog log;
  Request sleep_request;
  sleep_request.op = Request::Op::kDebugSleep;
  sleep_request.sleep_ms = 1;
  const Status status = service.Admit(sleep_request, log.Sink());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(log.size(), 1u);  // Still answered, with the typed error.
}

TEST_F(ServiceTest, WatchdogConvertsWedgedWorkerIntoTypedError) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  options.enable_debug_ops = true;
  options.wedge_timeout_ms = 20;
  MatcherService service(&registry, options);

  ResponseLog log;
  Request wedge;
  wedge.op = Request::Op::kDebugSleep;
  wedge.id = "wedge";
  wedge.sleep_ms = 60000;  // Far beyond any test budget.
  ASSERT_TRUE(service.Admit(wedge, log.Sink()).ok());

  std::thread worker([&service] { service.ProcessOne(); });

  // The watchdog answers once the request has visibly started and aged
  // past the wedge timeout (the far-future timestamp makes age
  // irrelevant — only "started and unanswered" matters).
  size_t recovered = 0;
  for (int spin = 0; spin < 5000 && recovered == 0; ++spin) {
    recovered =
        service.PokeWatchdog(UINT64_C(1) << 62);
    if (recovered == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(recovered, 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.responses[0].status.code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(log.responses[0].id, "wedge");

  // The recovered "wedge" releases its worker (the answered flag is the
  // sleep loop's escape hatch): the thread joins promptly, and the late
  // answer is discarded — exactly one response total.
  worker.join();
  EXPECT_EQ(service.in_flight(), 0u);
  EXPECT_EQ(log.size(), 1u);
}

TEST_F(ServiceTest, StatsJsonExposesQueueCacheAndModels) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  options.queue_bound = 7;
  MatcherService service(&registry, options);

  const std::string stats = service.StatsJson();
  EXPECT_NE(stats.find("\"queue_bound\":7"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"models\":[\"default\"]"), std::string::npos);
  EXPECT_NE(stats.find("\"cache\""), std::string::npos);
  EXPECT_NE(stats.find("\"metrics\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Serving telemetry: minted request ids, journal, flight recorder,
// windowed stats

TEST_F(ServiceTest, MintedRequestIdsAreUniquePerAdmission) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions options;
  options.auto_dispatch = false;
  MatcherService service(&registry, options);

  // A client retry reuses its correlation id; each admission still
  // mints a fresh request id, so the two attempts are tellable apart.
  ResponseLog log;
  Request retry;
  retry.op = Request::Op::kPing;
  retry.id = "client-7";
  ASSERT_TRUE(service.Admit(retry, log.Sink()).ok());
  ASSERT_TRUE(service.Admit(retry, log.Sink()).ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.responses[0].id, "client-7");
  EXPECT_EQ(log.responses[1].id, "client-7");
  EXPECT_EQ(log.responses[0].request_id, "q00000001");
  EXPECT_EQ(log.responses[1].request_id, "q00000002");

  // The minted id crosses the wire as "req" and round-trips.
  const std::string rendered = serve::RenderResponse(log.responses[1]);
  EXPECT_NE(rendered.find("\"req\":\"q00000002\""), std::string::npos)
      << rendered;
  Result<Response> parsed = serve::ParseResponse(rendered);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().request_id, "q00000002");
}

TEST_F(ServiceTest, JournalBytesAreIdenticalAcrossThreadCounts) {
  const std::string prefix = testing::TempDir() + "/wym_journal_det." +
                             std::to_string(::getpid());
  // One sequential serving session: two queued predicts, one shed
  // (bound 2), the backlog, then a repeat pair that hits the cache.
  // With the injected counting clock every timestamp is a function of
  // the Now() call sequence alone, so the journal bytes must not
  // depend on the worker pool width.
  auto run = [&](size_t threads, const std::string& path,
                 std::string* bytes) {
    util::ThreadPool pool(threads);
    ModelRegistry registry;
    ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
    obs::EventLog::Options journal_options;
    journal_options.path = path;
    obs::EventLog journal(journal_options);
    std::string error;
    ASSERT_TRUE(journal.Open(&error)) << error;

    uint64_t fake_now = 0;
    ServiceOptions options;
    options.auto_dispatch = false;
    options.queue_bound = 2;
    options.now_ns = [&fake_now] { return fake_now += 1000; };
    options.journal = &journal;
    MatcherService service(&registry, options, &pool);

    ResponseLog log;
    ASSERT_TRUE(service.Admit(PredictRequest(0, "a"), log.Sink()).ok());
    ASSERT_TRUE(service.Admit(PredictRequest(1, "b"), log.Sink()).ok());
    EXPECT_EQ(service.Admit(PredictRequest(2, "c"), log.Sink()).code(),
              Status::Code::kResourceExhausted);
    EXPECT_EQ(service.ProcessQueued(), 2u);
    ASSERT_TRUE(service.Admit(PredictRequest(0, "a2"), log.Sink()).ok());
    EXPECT_EQ(service.ProcessQueued(), 1u);
    journal.Close();
    ASSERT_TRUE(io::ReadFileToString(path, bytes).ok());
    std::string journal_error;
    EXPECT_TRUE(obs::ValidateJournalJson(*bytes, &journal_error))
        << journal_error;
  };

  std::string one, eight;
  run(1, prefix + ".1.jsonl", &one);
  run(8, prefix + ".8.jsonl", &eight);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
  // The shed and the cache hit both made it into the journal.
  EXPECT_NE(one.find("\"outcome\":\"shed\""), std::string::npos) << one;
  EXPECT_NE(one.find("\"outcome\":\"cache_hit\""), std::string::npos) << one;
  std::remove((prefix + ".1.jsonl").c_str());
  std::remove((prefix + ".8.jsonl").c_str());
}

TEST_F(ServiceTest, JournalRotatesAtSizeBoundWhileServing) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  const std::string path = testing::TempDir() + "/wym_journal_rotate." +
                           std::to_string(::getpid()) + ".jsonl";
  obs::EventLog::Options journal_options;
  journal_options.path = path;
  journal_options.max_bytes = 512;  // A few ping lines per file.
  obs::EventLog journal(journal_options);
  std::string error;
  ASSERT_TRUE(journal.Open(&error)) << error;

  ServiceOptions options;
  options.auto_dispatch = false;
  options.journal = &journal;
  MatcherService service(&registry, options);

  ResponseLog log;
  for (int i = 0; i < 10; ++i) {
    Request ping;
    ping.op = Request::Op::kPing;
    ping.id = "p" + std::to_string(i);
    ASSERT_TRUE(service.Admit(ping, log.Sink()).ok());
  }
  EXPECT_EQ(journal.lines_written(), 10u);
  EXPECT_GE(journal.rotations(), 1u);
  journal.Close();

  // Both the active file and the rotation slot are valid journals and
  // honor the size bound.
  for (const std::string& file : {path, path + ".1"}) {
    std::string bytes;
    ASSERT_TRUE(io::ReadFileToString(file, &bytes).ok()) << file;
    EXPECT_TRUE(obs::ValidateJournalJson(bytes, &error))
        << file << ": " << error;
    EXPECT_LE(bytes.size(), 512u) << file;
  }
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST_F(ServiceTest, WatchdogRecoveryLandsWedgedRecordInFlightRecorder) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  obs::FlightRecorder recorder(16);
  ServiceOptions options;
  options.auto_dispatch = false;
  options.enable_debug_ops = true;
  options.wedge_timeout_ms = 20;
  options.recorder = &recorder;
  MatcherService service(&registry, options);

  ResponseLog log;
  Request wedge;
  wedge.op = Request::Op::kDebugSleep;
  wedge.id = "stuck-client";
  wedge.sleep_ms = 60000;
  ASSERT_TRUE(service.Admit(wedge, log.Sink()).ok());
  std::thread worker([&service] { service.ProcessOne(); });

  size_t recovered = 0;
  for (int spin = 0; spin < 5000 && recovered == 0; ++spin) {
    recovered = service.PokeWatchdog(UINT64_C(1) << 62);
    if (recovered == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(recovered, 1u);
  worker.join();

  // The postmortem artifact is valid and holds the wedged request —
  // the incident is diagnosable from the dump alone.
  const std::string dump = recorder.DumpJson("watchdog");
  std::string error;
  EXPECT_TRUE(obs::ValidateFlightRecorderJson(dump, &error)) << error;
  EXPECT_NE(dump.find("\"client_id\":\"stuck-client\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"outcome\":\"wedged\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"watchdog\""), std::string::npos);
  // The released worker's late answer lost the race: nothing after the
  // wedged record.
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST_F(ServiceTest, WindowPercentilesMatchOfflineRecomputation) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  obs::WindowTracker windows;  // Default serving metric names.
  uint64_t fake_now = 0;
  ServiceOptions options;
  options.auto_dispatch = false;
  options.cache_entries = 0;
  options.now_ns = [&fake_now] { return fake_now += 1000; };
  options.windows = &windows;
  MatcherService service(&registry, options);

  const obs::HistogramSnapshot before =
      obs::Registry::Global().GetHistogram("serve.request_ns").Snapshot();
  windows.Tick(0);
  ResponseLog log;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        service.Admit(PredictRequest(i, "w" + std::to_string(i)), log.Sink())
            .ok());
    EXPECT_EQ(service.ProcessQueued(), 1u);
  }
  windows.Tick(10ull * 1000 * 1000 * 1000);

  // The window's percentiles must equal an offline recomputation from
  // raw histogram deltas over the same span.
  const obs::WindowStats stats = windows.Delta(10ull * 1000 * 1000 * 1000);
  const obs::HistogramSnapshot offline =
      obs::Registry::Global()
          .GetHistogram("serve.request_ns")
          .Snapshot()
          .DeltaSince(before);
  EXPECT_EQ(offline.count, 8u);
  EXPECT_DOUBLE_EQ(stats.p50_ns, offline.Percentile(0.50));
  EXPECT_DOUBLE_EQ(stats.p95_ns, offline.Percentile(0.95));
  EXPECT_DOUBLE_EQ(stats.p99_ns, offline.Percentile(0.99));
  // The counting clock makes every request cost exactly 2000ns (three
  // Now() reads), pinning the percentiles into bucket [1024, 2047].
  EXPECT_GE(stats.p99_ns, 1024.0);
  EXPECT_LE(stats.p99_ns, 2047.0);
}

TEST_F(ServiceTest, StatsJsonExposesTelemetrySectionsOnlyWhenConfigured) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  ServiceOptions off;
  off.auto_dispatch = false;
  MatcherService plain(&registry, off);
  const std::string without = plain.StatsJson();
  EXPECT_EQ(without.find("\"windows\""), std::string::npos);
  EXPECT_EQ(without.find("\"journal\""), std::string::npos);
  EXPECT_EQ(without.find("\"recorder\""), std::string::npos);

  const std::string path = testing::TempDir() + "/wym_stats_journal." +
                           std::to_string(::getpid()) + ".jsonl";
  obs::EventLog::Options journal_options;
  journal_options.path = path;
  obs::EventLog journal(journal_options);
  std::string error;
  ASSERT_TRUE(journal.Open(&error)) << error;
  obs::FlightRecorder recorder(4);
  obs::WindowTracker windows;
  ServiceOptions on;
  on.auto_dispatch = false;
  on.journal = &journal;
  on.recorder = &recorder;
  on.windows = &windows;
  MatcherService service(&registry, on);

  ResponseLog log;
  Request ping;
  ping.op = Request::Op::kPing;
  ping.id = "s";
  ASSERT_TRUE(service.Admit(ping, log.Sink()).ok());
  const std::string stats = service.StatsJson();
  EXPECT_NE(stats.find("\"windows\":{"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"journal\":{\"path\":"), std::string::npos);
  EXPECT_NE(stats.find("\"lines\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"recorder\":{\"capacity\":4,\"recorded\":1}"),
            std::string::npos);
  journal.Close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Socket seam under scripted faults

/// A connected AF_UNIX socketpair; both ends owned by the test.
struct SocketPairFds {
  int a = -1;
  int b = -1;
  SocketPairFds() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
      a = fds[0];
      b = fds[1];
    }
  }
};

TEST(SocketIoTest, ShortReadsReassembleTheLine) {
  SocketPairFds fds;
  ASSERT_GE(fds.a, 0);
  LineChannel reader(fds.a);
  LineChannel writer(fds.b);
  ASSERT_TRUE(writer.WriteLine("hello fragmented world").ok());

  io::FaultInjector injector;
  injector.SockShortRead(1).SockShortRead(2).SockShortRead(3);
  io::ScopedFaultInjector guard(&injector);
  std::string line;
  bool eof = false;
  bool timed_out = false;
  ASSERT_TRUE(reader.ReadLine(&line, 1000, &eof, &timed_out).ok());
  EXPECT_FALSE(eof);
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(line, "hello fragmented world");
}

TEST(SocketIoTest, EintrIsRetriedOnBothDirections) {
  SocketPairFds fds;
  ASSERT_GE(fds.a, 0);
  LineChannel reader(fds.a);
  LineChannel writer(fds.b);

  io::FaultInjector injector;
  injector.SockEintr().SockEintr();
  io::ScopedFaultInjector guard(&injector);
  ASSERT_TRUE(writer.WriteLine("interrupted but delivered").ok());
  std::string line;
  bool eof = false;
  bool timed_out = false;
  ASSERT_TRUE(reader.ReadLine(&line, 1000, &eof, &timed_out).ok());
  EXPECT_EQ(line, "interrupted but delivered");
}

TEST(SocketIoTest, ShortWritesCompleteTheLine) {
  SocketPairFds fds;
  ASSERT_GE(fds.a, 0);
  LineChannel reader(fds.a);
  LineChannel writer(fds.b);

  {
    io::FaultInjector injector;
    injector.SockShortWrite(2).SockShortWrite(1).SockShortWrite(4);
    io::ScopedFaultInjector guard(&injector);
    ASSERT_TRUE(writer.WriteLine("drip fed payload").ok());
  }
  std::string line;
  bool eof = false;
  bool timed_out = false;
  ASSERT_TRUE(reader.ReadLine(&line, 1000, &eof, &timed_out).ok());
  EXPECT_EQ(line, "drip fed payload");
}

TEST(SocketIoTest, DisconnectBetweenMessagesIsCleanEof) {
  SocketPairFds fds;
  ASSERT_GE(fds.a, 0);
  LineChannel reader(fds.a);
  LineChannel writer(fds.b);
  ASSERT_TRUE(writer.WriteLine("x").ok());

  io::FaultInjector injector;
  injector.SockDisconnect();
  io::ScopedFaultInjector guard(&injector);
  std::string line;
  bool eof = false;
  bool timed_out = false;
  ASSERT_TRUE(reader.ReadLine(&line, 1000, &eof, &timed_out).ok());
  EXPECT_TRUE(eof);
}

TEST(SocketIoTest, DisconnectMidMessageIsATypedError) {
  SocketPairFds fds;
  ASSERT_GE(fds.a, 0);
  LineChannel reader(fds.a);
  {
    // Peer sends a torn line (no terminator), then goes away.
    LineChannel writer(fds.b);
    const char torn[] = "torn-messa";
    ASSERT_EQ(::send(fds.b, torn, sizeof(torn) - 1, 0),
              static_cast<ssize_t>(sizeof(torn) - 1));
  }  // ~LineChannel closes the peer fd.
  std::string line;
  bool eof = false;
  bool timed_out = false;
  const Status status = reader.ReadLine(&line, 1000, &eof, &timed_out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIoError);
  EXPECT_NE(status.ToString().find("mid-message"), std::string::npos);
}

TEST(SocketIoTest, DisconnectDuringWriteIsATypedError) {
  SocketPairFds fds;
  ASSERT_GE(fds.a, 0);
  LineChannel writer(fds.a);
  ::close(fds.b);

  io::FaultInjector injector;
  injector.SockDisconnect();
  io::ScopedFaultInjector guard(&injector);
  const Status status = writer.WriteLine("into the void");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

// ---------------------------------------------------------------------
// End-to-end over a socketpair: the production connection loop

class SocketServeTest : public ServeFixtureTest {
 protected:
  /// Runs a full client exchange against ServeConnection on a
  /// socketpair, with optional scripted faults installed on the
  /// *server* thread. Returns the response lines the client got.
  static std::vector<std::string> Exchange(
      MatcherService* service, const std::vector<std::string>& lines,
      io::FaultInjector* server_faults) {
    SocketPairFds fds;
    EXPECT_GE(fds.a, 0);
    serve::ServerOptions server_options;
    server_options.read_timeout_ms = 50;
    serve::SocketServer server(service, server_options);
    std::thread connection([&server, &fds, server_faults] {
      if (server_faults != nullptr) {
        io::ScopedFaultInjector guard(server_faults);
        server.ServeConnection(fds.a);
      } else {
        server.ServeConnection(fds.a);
      }
    });

    std::vector<std::string> responses;
    {
      LineChannel client(fds.b);
      for (const std::string& line : lines) {
        if (!client.WriteLine(line).ok()) break;
        std::string response;
        bool eof = false;
        bool timed_out = false;
        const Status read =
            client.ReadLine(&response, 5000, &eof, &timed_out);
        if (!read.ok() || eof || timed_out) break;
        responses.push_back(response);
      }
    }  // Client closes; the connection thread sees EOF and returns.
    connection.join();
    return responses;
  }
};

TEST_F(SocketServeTest, PredictOverTheWireMatchesOffline) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  MatcherService service(&registry, ServiceOptions{});

  Request request = PredictRequest(0, "wire");
  const std::vector<std::string> responses =
      Exchange(&service, {serve::RenderRequest(request)}, nullptr);
  ASSERT_EQ(responses.size(), 1u);
  auto parsed = serve::ParseResponse(responses[0]);
  ASSERT_TRUE(parsed.ok()) << responses[0];
  ASSERT_TRUE(parsed.value().status.ok())
      << parsed.value().status.ToString();
  ASSERT_EQ(parsed.value().results.size(), 1u);
  const std::vector<double> offline = Offline({TestPair(0)});
  EXPECT_EQ(parsed.value().results[0].probability, offline[0]);
}

TEST_F(SocketServeTest, MalformedLineGetsTypedErrorAndConnectionSurvives) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  MatcherService service(&registry, ServiceOptions{});

  const std::vector<std::string> responses = Exchange(
      &service, {"this is not json", "{\"op\":\"ping\",\"id\":\"after\"}"},
      nullptr);
  ASSERT_EQ(responses.size(), 2u);
  auto error = serve::ParseResponse(responses[0]);
  ASSERT_TRUE(error.ok()) << responses[0];
  EXPECT_EQ(error.value().status.code(), Status::Code::kInvalidArgument);
  auto ping = serve::ParseResponse(responses[1]);
  ASSERT_TRUE(ping.ok()) << responses[1];
  EXPECT_TRUE(ping.value().status.ok());
  EXPECT_EQ(ping.value().id, "after");
}

TEST_F(SocketServeTest, ServerSideFaultSweepNeverCrashesOrHangs) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  MatcherService service(&registry, ServiceOptions{});

  const std::string ping = "{\"op\":\"ping\",\"id\":\"p\"}";
  // Each scripted fault lands on the server's connection loop. The
  // contract: a typed response, or a clean close (fewer responses) —
  // never a crash, never a hang (Exchange joins the thread).
  for (int kind = 0; kind < 4; ++kind) {
    io::FaultInjector injector;
    switch (kind) {
      case 0:
        injector.SockShortRead(1).SockShortRead(2);
        break;
      case 1:
        injector.SockEintr().SockEintr();
        break;
      case 2:
        injector.SockDisconnect();
        break;
      case 3:
        injector.SockShortWrite(1).SockShortWrite(2);
        break;
    }
    const std::vector<std::string> responses =
        Exchange(&service, {ping, ping}, &injector);
    EXPECT_LE(responses.size(), 2u) << "fault kind " << kind;
    for (const std::string& line : responses) {
      auto parsed = serve::ParseResponse(line);
      ASSERT_TRUE(parsed.ok()) << "fault kind " << kind << ": " << line;
      EXPECT_TRUE(parsed.value().status.ok());
    }
    // The service itself is untouched by connection-level faults.
    EXPECT_EQ(service.queue_depth(), 0u);
    EXPECT_EQ(service.in_flight(), 0u);
  }
}

TEST_F(SocketServeTest, HotLoadCorruptRejectOldModelKeepsServingOverWire) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("default", suite_->model_path).ok());
  MatcherService service(&registry, ServiceOptions{});

  Request load_corrupt;
  load_corrupt.op = Request::Op::kLoadModel;
  load_corrupt.id = "hot";
  load_corrupt.name = "default";
  load_corrupt.path = suite_->corrupt_path;

  Request predict = PredictRequest(0, "still-serving");
  const std::vector<std::string> responses = Exchange(
      &service,
      {serve::RenderRequest(load_corrupt), serve::RenderRequest(predict)},
      nullptr);
  ASSERT_EQ(responses.size(), 2u);

  auto rejected = serve::ParseResponse(responses[0]);
  ASSERT_TRUE(rejected.ok()) << responses[0];
  EXPECT_EQ(rejected.value().status.code(), Status::Code::kCorruption);

  auto served = serve::ParseResponse(responses[1]);
  ASSERT_TRUE(served.ok()) << responses[1];
  ASSERT_TRUE(served.value().status.ok())
      << served.value().status.ToString();
  const std::vector<double> offline = Offline({TestPair(0)});
  ASSERT_EQ(served.value().results.size(), 1u);
  EXPECT_EQ(served.value().results[0].probability, offline[0]);
}

}  // namespace
}  // namespace wym
