#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/matcher.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "explain/evaluation.h"
#include "explain/landmark.h"
#include "explain/lime.h"
#include "explain/report.h"
#include "explain/token_explanation.h"
#include "util/stats.h"

namespace wym::explain {
namespace {

/// A transparent matcher for explainer tests: probability grows with the
/// token-overlap of the identity attribute, so the important tokens are
/// known by construction.
class OverlapMatcher : public core::Matcher {
 public:
  const char* name() const override { return "overlap"; }
  void Fit(const data::Dataset&, const data::Dataset&) override {}
  double PredictProba(const data::EmRecord& record) const override {
    const text::Tokenizer tokenizer;
    const auto lt = tokenizer.Tokenize(record.left.values[0]);
    const auto rt = tokenizer.Tokenize(record.right.values[0]);
    if (lt.empty() || rt.empty()) return 0.0;
    size_t shared = 0;
    for (const auto& l : lt) {
      for (const auto& r : rt) shared += (l == r);
    }
    return std::min(1.0, static_cast<double>(shared) /
                             static_cast<double>(std::max(lt.size(),
                                                          rt.size())));
  }
};

data::EmRecord MakeRecord(const std::string& left_name,
                          const std::string& right_name, int label) {
  data::EmRecord record;
  record.left.values = {left_name, "x"};
  record.right.values = {right_name, "x"};
  record.label = label;
  return record;
}

TEST(TokenExplanationTest, EnumerateAndMaskRoundTrip) {
  const text::Tokenizer tokenizer;
  const data::EmRecord record = MakeRecord("digital camera", "oak table", 0);
  const auto tokens = EnumerateTokens(record, tokenizer);
  ASSERT_EQ(tokens.size(), 6u);  // 2+1 left, 2+1 right.

  // Keeping everything reproduces the token content.
  const data::EmRecord full =
      MaskRecord(record, tokens, std::vector<bool>(tokens.size(), true));
  EXPECT_EQ(full.left.values[0], "digital camera");
  EXPECT_EQ(full.right.values[0], "oak table");

  // Dropping everything empties the values.
  const data::EmRecord empty =
      MaskRecord(record, tokens, std::vector<bool>(tokens.size(), false));
  EXPECT_TRUE(empty.left.values[0].empty());
  EXPECT_TRUE(empty.right.values[1].empty());
}

TEST(TokenExplanationTest, RankByMagnitude) {
  TokenLevelExplanation explanation;
  explanation.weights = {{{}, 0.1}, {{}, -0.9}, {{}, 0.5}};
  const auto order = explanation.RankByMagnitude();
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST(LimeTest, FindsTheSharedToken) {
  // "camera" is the only shared token: dropping it kills the probability,
  // so LIME must give it the largest positive weight among left tokens.
  const OverlapMatcher matcher;
  const data::EmRecord record =
      MakeRecord("camera zebra", "camera window", 1);
  LimeOptions options;
  options.num_samples = 200;
  const LimeExplainer lime(options);
  const TokenLevelExplanation explanation = lime.Explain(matcher, record);

  double camera_weight = -1e9, other_max = -1e9;
  for (const auto& tw : explanation.weights) {
    if (tw.key.token == "camera") {
      camera_weight = std::max(camera_weight, tw.weight);
    } else if (tw.key.attribute == 0) {
      other_max = std::max(other_max, tw.weight);
    }
  }
  EXPECT_GT(camera_weight, other_max);
  EXPECT_GT(camera_weight, 0.0);
}

TEST(LimeTest, DeterministicForSeed) {
  const OverlapMatcher matcher;
  const data::EmRecord record = MakeRecord("a b c", "a d e", 1);
  const LimeExplainer lime;
  const auto e1 = lime.Explain(matcher, record);
  const auto e2 = lime.Explain(matcher, record);
  ASSERT_EQ(e1.weights.size(), e2.weights.size());
  for (size_t i = 0; i < e1.weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(e1.weights[i].weight, e2.weights[i].weight);
  }
}

TEST(LandmarkTest, CoversBothSidesOnce) {
  const OverlapMatcher matcher;
  const data::EmRecord record = MakeRecord("alpha beta", "alpha gamma", 1);
  const LandmarkExplainer landmark;
  const TokenLevelExplanation explanation =
      landmark.Explain(matcher, record);
  size_t left = 0, right = 0;
  for (const auto& tw : explanation.weights) {
    (tw.key.side == core::Side::kLeft ? left : right) += 1;
  }
  EXPECT_EQ(left, 3u);   // alpha beta x.
  EXPECT_EQ(right, 3u);  // alpha gamma x.
}

TEST(LandmarkTest, SharedTokenOutweighsUniqueToken) {
  const OverlapMatcher matcher;
  const data::EmRecord record =
      MakeRecord("camera zebra", "camera window", 1);
  LandmarkOptions options;
  options.num_samples = 200;
  const LandmarkExplainer landmark(options);
  const auto explanation = landmark.Explain(matcher, record);
  double camera = -1e9, zebra = 1e9;
  for (const auto& tw : explanation.weights) {
    if (tw.key.token == "camera" && tw.key.side == core::Side::kLeft) {
      camera = tw.weight;
    }
    if (tw.key.token == "zebra") zebra = tw.weight;
  }
  EXPECT_GT(camera, zebra);
}

// ---------------------------------------------------------------------
// Explanation-quality evaluation on a trained WYM model.
// ---------------------------------------------------------------------

class EvaluationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.4);
    split_ = std::make_unique<data::Split>(data::DefaultSplit(dataset, 42));
    model_ = std::make_unique<core::WymModel>();
    model_->Fit(split_->train, split_->validation);
    sample_ = std::make_unique<data::Dataset>(
        data::Subset(split_->test, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, "/s"));
  }
  static void TearDownTestSuite() {
    sample_.reset();
    model_.reset();
    split_.reset();
  }

  static std::unique_ptr<data::Split> split_;
  static std::unique_ptr<core::WymModel> model_;
  static std::unique_ptr<data::Dataset> sample_;
};

std::unique_ptr<data::Split> EvaluationTest::split_;
std::unique_ptr<core::WymModel> EvaluationTest::model_;
std::unique_ptr<data::Dataset> EvaluationTest::sample_;

TEST_F(EvaluationTest, ConcisenessCurveIsMonotone) {
  std::vector<core::Explanation> explanations;
  for (const auto& record : sample_->records) {
    explanations.push_back(model_->Explain(record));
  }
  const std::vector<double> fractions = {0.05, 0.2, 0.5, 1.0};
  const auto curve = AverageConcisenessCurve(explanations, fractions);
  ASSERT_EQ(curve.size(), 4u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-9);
  }
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);  // All units = all impact.
  EXPECT_GT(curve.front(), 0.0);
}

TEST_F(EvaluationTest, CumulativeImpactShareEdgeCases) {
  core::Explanation empty;
  EXPECT_DOUBLE_EQ(CumulativeImpactShare(empty, 0.5), 1.0);
  core::Explanation one;
  one.units.push_back({{}, 0.2, 0.7});
  EXPECT_DOUBLE_EQ(CumulativeImpactShare(one, 0.01), 1.0);
}

TEST_F(EvaluationTest, PostHocAccuracyImprovesWithMoreUnits) {
  const double acc1 = PostHocAccuracyWym(*model_, *sample_, 1);
  const double acc5 = PostHocAccuracyWym(*model_, *sample_, 5);
  EXPECT_GE(acc5 + 1e-9, acc1 - 0.21);  // Not strictly monotone, but close.
  EXPECT_GT(acc5, 0.5);
}

TEST_F(EvaluationTest, PostHocAccuracyTokensRuns) {
  LimeOptions options;
  options.num_samples = 25;
  const LimeExplainer lime(options);
  const double acc = PostHocAccuracyTokens(
      *model_, *sample_,
      [&](const data::EmRecord& r) { return lime.Explain(*model_, r); }, 3);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST_F(EvaluationTest, MoRFHurtsMoreThanLeRF) {
  const double baseline = F1AfterUnitRemoval(
      *model_, split_->test, RemovalStrategy::kMoRF, 0, 1);
  const double morf = F1AfterUnitRemoval(
      *model_, split_->test, RemovalStrategy::kMoRF, 4, 1);
  const double lerf = F1AfterUnitRemoval(
      *model_, split_->test, RemovalStrategy::kLeRF, 4, 1);
  EXPECT_LT(morf, baseline);        // Removing key units hurts.
  EXPECT_GT(lerf + 1e-9, morf);     // LeRF is gentler than MoRF.
}

TEST_F(EvaluationTest, RemovalStrategyNames) {
  EXPECT_STREQ(RemovalStrategyName(RemovalStrategy::kMoRF), "MoRF");
  EXPECT_STREQ(RemovalStrategyName(RemovalStrategy::kLeRF), "LeRF");
  EXPECT_STREQ(RemovalStrategyName(RemovalStrategy::kRandom), "Random");
}

TEST_F(EvaluationTest, LandmarkCorrelationsInRange) {
  LandmarkOptions options;
  options.num_samples = 25;
  const LandmarkExplainer landmark(options);
  const auto correlations =
      UnitLandmarkCorrelations(*model_, landmark, *sample_);
  for (double c : correlations) {
    EXPECT_GE(c, -1.0);
    EXPECT_LE(c, 1.0);
  }
}


// ---------------------------------------------------------------------
// Report rendering.
// ---------------------------------------------------------------------

core::Explanation MakeTinyExplanation() {
  core::Explanation explanation;
  explanation.prediction = 1;
  explanation.probability = 0.93;
  core::ExplainedUnit paired;
  paired.unit.paired = true;
  paired.unit.phase = core::UnitPhase::kIntraAttribute;
  paired.unit.left.token = "exch";
  paired.unit.right.token = "exch";
  paired.relevance = 0.8;
  paired.impact = 1.2;
  core::ExplainedUnit unpaired;
  unpaired.unit.paired = false;
  unpaired.unit.unpaired_side = core::Side::kLeft;
  unpaired.unit.left.token = "eng\"x";  // Needs JSON escaping.
  unpaired.relevance = -0.6;
  unpaired.impact = -0.4;
  explanation.units = {paired, unpaired};
  return explanation;
}

TEST(ReportTest, RendersBarsAndOrder) {
  const std::string text = RenderExplanation(MakeTinyExplanation());
  EXPECT_NE(text.find("MATCH (p=0.930)"), std::string::npos);
  EXPECT_NE(text.find("(exch, exch)"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
  // Positive impact rendered before negative.
  EXPECT_LT(text.find("exch"), text.find("eng"));
  EXPECT_NE(text.find("+1.200"), std::string::npos);
  EXPECT_NE(text.find("-0.400"), std::string::npos);
}

TEST(ReportTest, MaxUnitsTruncates) {
  ReportOptions options;
  options.max_units = 1;
  const std::string text =
      RenderExplanation(MakeTinyExplanation(), options);
  EXPECT_NE(text.find("exch"), std::string::npos);
  EXPECT_EQ(text.find("eng"), std::string::npos);
}

TEST(ReportTest, EmptyExplanation) {
  core::Explanation empty;
  const std::string text = RenderExplanation(empty);
  EXPECT_NE(text.find("no decision units"), std::string::npos);
}

TEST(ReportTest, JsonIsWellFormedAndEscaped) {
  const std::string json = ExplanationToJson(MakeTinyExplanation());
  EXPECT_NE(json.find("\"prediction\":1"), std::string::npos);
  EXPECT_NE(json.find("\"paired\":true"), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"intra\""), std::string::npos);
  EXPECT_NE(json.find("eng\\\"x"), std::string::npos);  // Escaped quote.
  // Balanced braces/brackets.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace wym::explain
