#include <gtest/gtest.h>

#include "text/string_metrics.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace wym::text {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  const Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("exch srvr, external/sa-eng");
  EXPECT_EQ(tokens, (std::vector<std::string>{"exch", "srvr", "external",
                                              "sa", "eng"}));
}

TEST(TokenizerTest, KeepsDecimalPrices) {
  const Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("price 37.63 usd");
  EXPECT_EQ(tokens, (std::vector<std::string>{"price", "37.63", "usd"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  const Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("Sony DSLR"),
            (std::vector<std::string>{"sony", "dslr"}));
}

TEST(TokenizerTest, RemovesStopWords) {
  const Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("the camera of and with lens");
  EXPECT_EQ(tokens, (std::vector<std::string>{"camera", "lens"}));
}

TEST(TokenizerTest, StopWordRemovalCanBeDisabled) {
  TokenizerOptions options;
  options.remove_stopwords = false;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("the camera").size(), 2u);
}

TEST(TokenizerTest, EmptyInput) {
  const Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  ,;-  ").empty());
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions options;
  options.min_token_length = 3;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("hp 42 laserjet"),
            (std::vector<std::string>{"laserjet"}));
}

TEST(SubwordSplitterTest, CoversEveryToken) {
  const SubwordSplitter splitter({"digital", "digit", "camera", "cam"});
  for (const char* word : {"digital", "camcorder", "zzz"}) {
    std::string reassembled;
    for (const auto& piece : splitter.Split(word)) reassembled += piece;
    EXPECT_EQ(reassembled, word);
  }
}

TEST(SubwordSplitterTest, ReusesFrequentPieces) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 10; ++i) corpus.push_back("digital");
  const SubwordSplitter splitter(corpus, 64, 6, 2);
  EXPECT_TRUE(splitter.Contains("digita") || splitter.Contains("digit") ||
              splitter.Contains("dig"));
  // "digital" splits into few long pieces, not 7 characters.
  EXPECT_LT(splitter.Split("digital").size(), 4u);
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
}

TEST(LevenshteinTest, SimilarityNormalized) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abXd"), 0.75, 1e-12);
}

TEST(JaroTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
}

TEST(JaroTest, ClassicExample) {
  // MARTHA vs MARHTA: Jaro = 0.944..., Jaro-Winkler = 0.961...
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
}

TEST(JaroWinklerTest, PrefixBoost) {
  const double jw_prefix = JaroWinklerSimilarity("prefixed", "prefixes");
  const double jw_suffix = JaroWinklerSimilarity("xprefixed", "yprefixed");
  EXPECT_GT(jw_prefix, jw_suffix);
}

TEST(JaroWinklerTest, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("dixon", "dicksonx"),
                   JaroWinklerSimilarity("dicksonx", "dixon"));
}

TEST(NgramJaccardTest, Behaviour) {
  EXPECT_DOUBLE_EQ(NgramJaccard("abcde", "abcde"), 1.0);
  EXPECT_DOUBLE_EQ(NgramJaccard("", ""), 1.0);
  EXPECT_GT(NgramJaccard("digital", "digitals"),
            NgramJaccard("digital", "analog"));
}

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary vocab;
  const int32_t a = vocab.Add("alpha");
  const int32_t b = vocab.Add("beta");
  vocab.Add("alpha");
  EXPECT_EQ(vocab.IdOf("alpha"), a);
  EXPECT_EQ(vocab.IdOf("beta"), b);
  EXPECT_EQ(vocab.IdOf("gamma"), kUnknownToken);
  EXPECT_EQ(vocab.CountOf(a), 2);
  EXPECT_EQ(vocab.CountOf(b), 1);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.total_count(), 3);
  EXPECT_EQ(vocab.TokenOf(a), "alpha");
}

TEST(VocabularyTest, TopKByFrequency) {
  Vocabulary vocab;
  for (int i = 0; i < 5; ++i) vocab.Add("common");
  for (int i = 0; i < 2; ++i) vocab.Add("rare");
  vocab.Add("unique");
  const auto top = vocab.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(vocab.TokenOf(top[0]), "common");
  EXPECT_EQ(vocab.TokenOf(top[1]), "rare");
}

}  // namespace
}  // namespace wym::text
