// Unit tests for the hardened I/O layer (util/io, util/crc32c,
// util/framed_file): CRC32C known-answer vectors, framed-container
// encode/decode/verify including structural damage, atomic writes, and
// the deterministic FaultInjector seam. The end-to-end corruption sweep
// over real model files lives in fault_injection_test.cc.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/framed_file.h"
#include "util/io.h"
#include "util/status.h"

namespace wym {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/wym_io_" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // The classic check value for the Castagnoli polynomial.
  EXPECT_EQ(crc32c::Crc32c("123456789"), 0xe3069283u);
  // RFC 3720 (iSCSI) appendix test patterns.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Crc32c(zeros), 0x8a9136aau);
  const std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Crc32c(ones), 0x62a8ab43u);
  std::string ascending;
  for (int i = 0; i < 32; ++i) ascending += static_cast<char>(i);
  EXPECT_EQ(crc32c::Crc32c(ascending), 0x46dd794eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(crc32c::Crc32c(""), 0u);
}

TEST(Crc32cTest, ExtendInChunksMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = crc32c::Init();
    crc = crc32c::Extend(crc, data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, crc32c::Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipsAlwaysChangeTheCrc) {
  const std::string data = "framed file payload bytes";
  const uint32_t clean = crc32c::Crc32c(data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    std::string mutated = data;
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1 << (bit % 8)));
    EXPECT_NE(crc32c::Crc32c(mutated), clean) << "bit " << bit;
  }
}

TEST(Crc32cTest, HexRoundTrip) {
  EXPECT_EQ(crc32c::ToHex(0xe3069283u), "e3069283");
  EXPECT_EQ(crc32c::ToHex(0u), "00000000");
  uint32_t crc = 0;
  EXPECT_TRUE(crc32c::FromHex("e3069283", &crc));
  EXPECT_EQ(crc, 0xe3069283u);
  EXPECT_TRUE(crc32c::FromHex("E3069283", &crc));
  EXPECT_EQ(crc, 0xe3069283u);
  EXPECT_FALSE(crc32c::FromHex("", &crc));
  EXPECT_FALSE(crc32c::FromHex("e306928", &crc));    // Too short.
  EXPECT_FALSE(crc32c::FromHex("e30692831", &crc));  // Too long.
  EXPECT_FALSE(crc32c::FromHex("e306928g", &crc));   // Not hex.
}

// ---------------------------------------------------------------------
// Framed container
// ---------------------------------------------------------------------

std::vector<io::FileFrame> TestFrames() {
  return {{"config", "17 some-config/v2 1 2 3"},
          {"weights", std::string("\x00\x01\xff binary\n bytes", 17)},
          {"empty", ""}};
}

TEST(FramedFileTest, EncodeDecodeRoundTrip) {
  const std::string bytes = io::EncodeFramedFile("WYMT", 3, TestFrames());
  EXPECT_TRUE(io::LooksFramed(bytes, "WYMT"));
  EXPECT_FALSE(io::LooksFramed(bytes, "WYMX"));

  uint32_t version = 0;
  std::vector<io::FileFrame> frames;
  ASSERT_TRUE(io::DecodeFramedFile(bytes, "WYMT", 3, &version, &frames).ok());
  EXPECT_EQ(version, 3u);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].name, "config");
  EXPECT_EQ(frames[0].payload, "17 some-config/v2 1 2 3");
  EXPECT_EQ(frames[1].payload, TestFrames()[1].payload);
  EXPECT_EQ(frames[2].payload, "");
}

TEST(FramedFileTest, RejectsWrongMagicAndFutureVersion) {
  const std::string bytes = io::EncodeFramedFile("WYMT", 3, TestFrames());
  const Status wrong_magic =
      io::DecodeFramedFile(bytes, "OTHR", 3, nullptr, nullptr);
  EXPECT_EQ(wrong_magic.code(), Status::Code::kCorruption);
  // A reader capped below the file's version must refuse, not guess.
  const Status future = io::DecodeFramedFile(bytes, "WYMT", 2, nullptr, nullptr);
  EXPECT_FALSE(future.ok());
}

TEST(FramedFileTest, EveryTruncationIsCorruption) {
  const std::string bytes = io::EncodeFramedFile("WYMT", 1, TestFrames());
  for (size_t len = 0; len < bytes.size(); ++len) {
    const Status status = io::DecodeFramedFile(bytes.substr(0, len), "WYMT",
                                               1, nullptr, nullptr);
    EXPECT_FALSE(status.ok()) << "truncated to " << len << " bytes";
  }
}

TEST(FramedFileTest, EveryBitFlipIsCorruption) {
  const std::string bytes = io::EncodeFramedFile("WYMT", 1, TestFrames());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string mutated = bytes;
    mutated[bit / 8] =
        static_cast<char>(mutated[bit / 8] ^ (1 << (bit % 8)));
    const Status status =
        io::DecodeFramedFile(mutated, "WYMT", 1, nullptr, nullptr);
    EXPECT_FALSE(status.ok()) << "bit " << bit;
  }
}

TEST(FramedFileTest, DamagedFrameIsNamedInTheError) {
  const std::string bytes = io::EncodeFramedFile("WYMT", 1, TestFrames());
  // Flip a bit inside the "weights" payload without touching structure.
  const size_t payload_at = bytes.find("binary");
  ASSERT_NE(payload_at, std::string::npos);
  std::string mutated = bytes;
  mutated[payload_at] ^= 1;
  const Status status =
      io::DecodeFramedFile(mutated, "WYMT", 1, nullptr, nullptr);
  ASSERT_EQ(status.code(), Status::Code::kCorruption);
  EXPECT_NE(status.message().find("weights"), std::string::npos)
      << status.ToString();
}

TEST(FramedFileTest, TrailingGarbageIsCorruption) {
  std::string bytes = io::EncodeFramedFile("WYMT", 1, TestFrames());
  bytes += "extra";
  EXPECT_FALSE(io::DecodeFramedFile(bytes, "WYMT", 1, nullptr, nullptr).ok());
}

TEST(FramedFileTest, OversizedLengthFieldDoesNotOverAllocate) {
  // A length far beyond the actual bytes must be rejected up front
  // (allocation-bounded decoding), not trusted.
  std::string bytes = "WYMT 1\nFRAME config 999999999999\npayload\n";
  EXPECT_FALSE(io::DecodeFramedFile(bytes, "WYMT", 1, nullptr, nullptr).ok());
}

TEST(FramedFileTest, VerifySummaryListsFrames) {
  const std::string bytes = io::EncodeFramedFile("WYMT", 1, TestFrames());
  std::string summary;
  ASSERT_TRUE(io::VerifyFramedFile(bytes, "WYMT", &summary).ok());
  EXPECT_NE(summary.find("config"), std::string::npos);
  EXPECT_NE(summary.find("weights"), std::string::npos);
  EXPECT_NE(summary.find("empty"), std::string::npos);
}

// ---------------------------------------------------------------------
// Atomic writes + reads
// ---------------------------------------------------------------------

TEST(WriteFileAtomicTest, WritesAndReadsBack) {
  const std::string path = TempPath("roundtrip.bin");
  const std::string data("binary \x00\x01\xff data\n", 16);
  ASSERT_TRUE(io::WriteFileAtomic(path, data).ok());
  std::string back;
  ASSERT_TRUE(io::ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, data);
  // No temp file left behind.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, OverwriteReplacesAtomically) {
  const std::string path = TempPath("overwrite.bin");
  ASSERT_TRUE(io::WriteFileAtomic(path, "old contents").ok());
  ASSERT_TRUE(io::WriteFileAtomic(path, "new contents").ok());
  std::string back;
  ASSERT_TRUE(io::ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "new contents");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, UnwritableDirectoryIsIoError) {
  const Status status =
      io::WriteFileAtomic("/nonexistent-dir/file.bin", "data");
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

TEST(ReadFileToStringTest, MissingFileIsIoError) {
  std::string out;
  const Status status = io::ReadFileToString(TempPath("missing.bin"), &out);
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, FailWriteAtLeavesTargetIntact) {
  const std::string path = TempPath("failwrite.bin");
  ASSERT_TRUE(io::WriteFileAtomic(path, "previous good version").ok());

  io::FaultInjector injector;
  injector.FailWriteAt(4);
  {
    io::ScopedFaultInjector scope(&injector);
    const Status status = io::WriteFileAtomic(path, "replacement data");
    EXPECT_EQ(status.code(), Status::Code::kIoError);
  }
  EXPECT_EQ(injector.faults_fired(), 1);
  std::string back;
  ASSERT_TRUE(io::ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "previous good version");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, EnospcMentionsSpace) {
  const std::string path = TempPath("enospc.bin");
  io::FaultInjector injector;
  injector.Enospc(0);
  io::ScopedFaultInjector scope(&injector);
  const Status status = io::WriteFileAtomic(path, "data");
  ASSERT_EQ(status.code(), Status::Code::kIoError);
  EXPECT_NE(status.message().find("space"), std::string::npos)
      << status.ToString();
}

TEST(FaultInjectorTest, CrashAtLeavesTempButNotTarget) {
  const std::string path = TempPath("crash.bin");
  std::remove(path.c_str());
  io::FaultInjector injector;
  injector.CrashAt(2);
  {
    io::ScopedFaultInjector scope(&injector);
    EXPECT_FALSE(io::WriteFileAtomic(path, "half-written").ok());
  }
  // Models kill -9 mid-save: the partial temp file survives, the target
  // path was never created.
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".tmp"));
  std::remove((path + ".tmp").c_str());
}

TEST(FaultInjectorTest, ShortReadTruncatesWhatTheReaderSees) {
  const std::string path = TempPath("shortread.bin");
  ASSERT_TRUE(io::WriteFileAtomic(path, "0123456789").ok());
  io::FaultInjector injector;
  injector.ShortRead(4);
  io::ScopedFaultInjector scope(&injector);
  std::string out;
  ASSERT_TRUE(io::ReadFileToString(path, &out).ok());
  EXPECT_EQ(out, "0123");
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, FlipBitMutatesExactlyOneBit) {
  const std::string path = TempPath("flipbit.bin");
  ASSERT_TRUE(io::WriteFileAtomic(path, "AAAA").ok());
  io::FaultInjector injector;
  injector.FlipBit(9);  // Bit 1 of byte 1: 'A' (0x41) -> 'C' (0x43).
  io::ScopedFaultInjector scope(&injector);
  std::string out;
  ASSERT_TRUE(io::ReadFileToString(path, &out).ok());
  EXPECT_EQ(out, "ACAA");
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, FaultsFireInScriptOrderAndThenRunClean) {
  const std::string path = TempPath("script.bin");
  io::FaultInjector injector;
  injector.FailWriteAt(0).Enospc(0);
  {
    io::ScopedFaultInjector scope(&injector);
    EXPECT_FALSE(io::WriteFileAtomic(path, "one").ok());
    EXPECT_FALSE(io::WriteFileAtomic(path, "two").ok());
    // Script exhausted: writes run clean again.
    EXPECT_TRUE(io::WriteFileAtomic(path, "three").ok());
  }
  EXPECT_EQ(injector.faults_fired(), 2);
  std::string back;
  ASSERT_TRUE(io::ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "three");
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, UninstalledInjectorMeansCleanIo) {
  EXPECT_EQ(io::ActiveFaultInjector(), nullptr);
  io::FaultInjector injector;
  {
    io::ScopedFaultInjector scope(&injector);
    EXPECT_EQ(io::ActiveFaultInjector(), &injector);
  }
  EXPECT_EQ(io::ActiveFaultInjector(), nullptr);
}

// ---------------------------------------------------------------------
// Status plumbing (satellite: Annotate / value_or)
// ---------------------------------------------------------------------

TEST(StatusAnnotateTest, PrependsContextToErrors) {
  const Status inner = Status::Corruption("frame 'config' failed CRC check");
  const Status outer = inner.Annotate("loading model m.wym");
  EXPECT_EQ(outer.code(), Status::Code::kCorruption);
  EXPECT_EQ(outer.message(),
            "loading model m.wym: frame 'config' failed CRC check");
  // Annotating OK is the identity: no allocation of fake context.
  EXPECT_TRUE(Status::Ok().Annotate("whatever").ok());
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> good(7);
  EXPECT_EQ(good.value_or(-1), 7);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_EQ(bad.value_or(-1), -1);
  Result<std::string> moved(Status::NotFound("nope"));
  EXPECT_EQ(std::move(moved).value_or("fallback"), "fallback");
}

}  // namespace
}  // namespace wym
