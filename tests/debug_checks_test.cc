// Tests for the WYM_DCHECK debug invariant tier in BOTH build modes.
// The same binary is compiled with and without -DWYM_DEBUG_CHECKS=ON:
// under the debug tier the instrumented paths (Matrix::At/Row bounds,
// kernel pointer/dimension contracts, NaN guards) must abort via
// WYM_CHECK; in release builds the very same macros must not evaluate
// their operands at all.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "la/kernels.h"
#include "la/matrix.h"
#include "util/logging.h"

namespace {

int Touch(int* evaluations) {
  ++*evaluations;
  return 1;
}

#ifdef WYM_DEBUG_CHECKS

TEST(DebugChecksDeathTest, MatrixAtOutOfBoundsAborts) {
  wym::la::Matrix m(2, 3);
  EXPECT_DEATH(m.At(2, 0), "WYM_CHECK failed");
  EXPECT_DEATH(m.At(0, 3), "WYM_CHECK failed");
  const wym::la::Matrix& cm = m;
  EXPECT_DEATH(cm.At(5, 5), "WYM_CHECK failed");
}

TEST(DebugChecksDeathTest, MatrixRowOutOfBoundsAborts) {
  wym::la::Matrix m(2, 3);
  EXPECT_DEATH(m.Row(2), "WYM_CHECK failed");
  const wym::la::Matrix& cm = m;
  EXPECT_DEATH(cm.Row(7), "WYM_CHECK failed");
}

TEST(DebugChecksDeathTest, KernelNullPointerContractAborts) {
  const double* null_vec = nullptr;
  EXPECT_DEATH(wym::la::kernels::Dot(null_vec, null_vec, 3),
               "WYM_CHECK failed");
}

TEST(DebugChecksDeathTest, DcheckFiniteAbortsOnNaNAndInf) {
  const double nan_range[] = {1.0,
                              std::numeric_limits<double>::quiet_NaN()};
  EXPECT_DEATH(WYM_DCHECK_FINITE(nan_range, 2) << "poisoned",
               "WYM_CHECK failed.*poisoned");
  const double inf_range[] = {std::numeric_limits<double>::infinity()};
  EXPECT_DEATH(WYM_DCHECK_FINITE(inf_range, 1), "WYM_CHECK failed");
}

TEST(DebugChecksTest, PassingDchecksEvaluateAndContinue) {
  int evaluations = 0;
  WYM_DCHECK(Touch(&evaluations) == 1);
  WYM_DCHECK_EQ(Touch(&evaluations), 1);
  EXPECT_EQ(evaluations, 2);
}

#else  // !WYM_DEBUG_CHECKS

TEST(DebugChecksTest, ReleaseDchecksDoNotEvaluateOperands) {
  int evaluations = 0;
  WYM_DCHECK(Touch(&evaluations) == 0);   // Would fail if evaluated.
  WYM_DCHECK_EQ(Touch(&evaluations), 0);  // Would fail if evaluated.
  WYM_DCHECK_LT(Touch(&evaluations), -1);
  EXPECT_EQ(evaluations, 0);
}

TEST(DebugChecksTest, ReleaseDcheckFiniteIsInertOnPoisonedData) {
  const double nan_range[] = {std::numeric_limits<double>::quiet_NaN()};
  WYM_DCHECK_FINITE(nan_range, 1) << "never printed";
  SUCCEED();
}

TEST(DebugChecksTest, ReleaseMatrixAccessIsUnchecked) {
  // In-bounds access must work identically in both modes; that is the
  // only behavior release builds promise.
  wym::la::Matrix m(2, 3);
  m.At(1, 2) = 4.0;
  EXPECT_EQ(m.At(1, 2), 4.0);
  EXPECT_EQ(m.Row(1)[2], 4.0);
}

#endif  // WYM_DEBUG_CHECKS

// Mode-independent: the finite-range helper itself.
TEST(RangeIsFiniteTest, DetectsNaNAndInfAnywhereInRange) {
  const double good[] = {0.0, -1.5, 1e300};
  EXPECT_TRUE(wym::internal::RangeIsFinite(good, 3));
  const double bad_nan[] = {0.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(wym::internal::RangeIsFinite(bad_nan, 2));
  const float bad_inf[] = {1.0f, -std::numeric_limits<float>::infinity()};
  EXPECT_FALSE(wym::internal::RangeIsFinite(bad_inf, 2));
  EXPECT_TRUE(wym::internal::RangeIsFinite(bad_nan, 0));
}

}  // namespace
