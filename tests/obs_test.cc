// Tests for the observability layer (src/obs): metrics registry,
// span tracing + trace_event export, the bundled JSON parser and the
// report validators — plus the non-perturbation contract: tracing a
// run must not change a single output byte.

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "util/parallel.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace wym;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------
// Counters / gauges / histograms
// ---------------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsMergeToExactTotal) {
  // WYM_METRICS defaults to on; the suite depends on that.
  ASSERT_TRUE(obs::MetricsEnabled());

  obs::Counter& counter =
      obs::Registry::Global().GetCounter("test.concurrent_increments");
  counter.Reset();

  util::ThreadPool pool(4);
  constexpr size_t kIterations = 200000;
  util::ParallelFor(
      kIterations, 1000,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) counter.Add(1);
      },
      &pool);
  EXPECT_EQ(counter.Value(), kIterations);

  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, AddWithDeltaAccumulates) {
  obs::Counter& counter = obs::Registry::Global().GetCounter("test.delta");
  counter.Reset();
  counter.Add(7);
  counter.Add(35);
  counter.Add();  // Default delta 1.
  EXPECT_EQ(counter.Value(), 43u);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  obs::Gauge& gauge = obs::Registry::Global().GetGauge("test.gauge");
  gauge.Reset();
  gauge.Add(3);
  gauge.Add(5);
  gauge.Add(-6);
  EXPECT_EQ(gauge.Value(), 2);
  EXPECT_EQ(gauge.Max(), 8);
  gauge.Set(1);
  EXPECT_EQ(gauge.Value(), 1);
  EXPECT_EQ(gauge.Max(), 8);  // Max never decreases.
}

TEST(HistogramTest, CountSumAndPercentiles) {
  obs::Histogram& hist =
      obs::Registry::Global().GetHistogram("test.histogram");
  hist.Reset();
  // 100 samples of 100ns, 10 of ~100us: p50 lands in the bucket
  // holding 100 ([64, 127]), p95 likewise, p99+ in the big bucket.
  for (int i = 0; i < 100; ++i) hist.Record(100);
  for (int i = 0; i < 10; ++i) hist.Record(100000);

  const obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 110u);
  EXPECT_EQ(snap.sum, 100u * 100u + 10u * 100000u);
  EXPECT_NEAR(snap.Mean(), static_cast<double>(snap.sum) / 110.0, 1e-9);

  const double p50 = snap.Percentile(0.50);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 127.0);
  const double p99 = snap.Percentile(0.99);
  EXPECT_GE(p99, 65536.0);
  EXPECT_LE(p99, 131071.0);

  // Degenerate inputs.
  EXPECT_EQ(obs::HistogramSnapshot{}.Percentile(0.5), 0.0);
  EXPECT_EQ(obs::HistogramSnapshot{}.Mean(), 0.0);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(1), 3u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(9), 1023u);
}

TEST(HistogramTest, ConcurrentRecordsMergeToExactCount) {
  obs::Histogram& hist =
      obs::Registry::Global().GetHistogram("test.histogram_concurrent");
  hist.Reset();
  util::ThreadPool pool(4);
  constexpr size_t kSamples = 50000;
  util::ParallelFor(
      kSamples, 500,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) hist.Record(i % 1024);
      },
      &pool);
  EXPECT_EQ(hist.Snapshot().count, kSamples);
}

TEST(RegistryTest, SnapshotIsNameSortedAndResetKeepsReferences) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter& b = registry.GetCounter("test.sorted.b");
  obs::Counter& a = registry.GetCounter("test.sorted.a");
  b.Reset();
  a.Reset();
  a.Add(1);
  b.Add(2);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }

  // Same name returns the same metric.
  EXPECT_EQ(&registry.GetCounter("test.sorted.a"), &a);

  registry.ResetForTest();
  EXPECT_EQ(a.Value(), 0u);  // Reference survived, value zeroed.
  a.Add(5);
  EXPECT_EQ(a.Value(), 5u);
}

TEST(RegistryTest, MetricsToJsonRoundTripsThroughOwnParser) {
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("test.json.counter").Reset();
  registry.GetCounter("test.json.counter").Add(9);
  registry.GetGauge("test.json.gauge").Set(4);
  registry.GetHistogram("test.json.hist").Record(1000);

  const std::string json = obs::MetricsToJson(registry.Snapshot());
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(json, &root, &error)) << error;
  ASSERT_TRUE(root.IsObject());

  const obs::JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* counter = counters->Find("test.json.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->number, 9.0);

  const obs::JsonValue* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* hist = hists->Find("test.json.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_NE(hist->Find("p50_ns"), nullptr);
  EXPECT_NE(hist->Find("p95_ns"), nullptr);
}

TEST(RegistryTest, RenderMetricsMentionsEveryMetric) {
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("test.render.counter").Add(1);
  const std::string text = obs::RenderMetrics(registry.Snapshot());
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
}

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(JsonParserTest, ParsesScalarsContainersAndEscapes) {
  obs::JsonValue v;
  std::string error;

  ASSERT_TRUE(obs::ParseJson("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":true},"
                             "\"d\":null,\"e\":\"x\\n\\\"y\\u0041\"}",
                             &v, &error))
      << error;
  ASSERT_TRUE(v.IsObject());
  const obs::JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -300.0);
  EXPECT_TRUE(v.Find("b")->Find("c")->boolean);
  EXPECT_TRUE(v.Find("d")->IsNull());
  EXPECT_EQ(v.Find("e")->string, "x\n\"yA");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  obs::JsonValue v;
  std::string error;
  const char* kBad[] = {
      "",                      // Empty.
      "{",                     // Unbalanced.
      "{\"a\":1,}",            // Trailing comma.
      "{a:1}",                 // Unquoted key.
      "[1 2]",                 // Missing comma.
      "\"\\x\"",               // Bad escape.
      "{\"a\":1} trailing",    // Garbage after the value.
      "nul",                   // Truncated literal.
  };
  for (const char* text : kBad) {
    error.clear();
    EXPECT_FALSE(obs::ParseJson(text, &v, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonParserTest, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  obs::JsonValue v;
  std::string error;
  EXPECT_FALSE(obs::ParseJson(deep, &v, &error));
}

// ---------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------

TEST(TraceTest, NowNanosIsMonotonic) {
  const std::uint64_t a = obs::NowNanos();
  const std::uint64_t b = obs::NowNanos();
  EXPECT_LE(a, b);
}

TEST(TraceTest, SpansProduceValidTraceEventJson) {
  const std::string path = "/tmp/wym_obs_test_trace.json";
  std::remove(path.c_str());

  obs::StartTracing(path);
  ASSERT_TRUE(obs::TracingActive());
  {
    obs::SpanScope outer("test.outer");
    { WYM_SPAN("test.inner"); }
  }
  // Spans from pool workers land in per-thread buffers.
  util::ThreadPool pool(2);
  util::ParallelFor(
      8, 1,
      [](size_t, size_t, size_t) { obs::SpanScope span("test.pool_chunk"); },
      &pool);
  const std::uint64_t start = obs::NowNanos();
  obs::AppendCompleteEvent("test.manual", "test", start, 42);

  std::string error;
  ASSERT_TRUE(obs::StopTracingAndWrite(&error)) << error;
  EXPECT_FALSE(obs::TracingActive());

  const std::string text = ReadFileBytes(path);
  ASSERT_TRUE(obs::ValidateTraceJson(text, &error)) << error;

  // The tree contains our spans, with the nesting visible in ts/dur.
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(text, &root, &error)) << error;
  const obs::JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  const obs::JsonValue* outer = nullptr;
  const obs::JsonValue* inner = nullptr;
  size_t pool_chunks = 0;
  for (const obs::JsonValue& event : events->array) {
    const std::string& name = event.Find("name")->string;
    if (name == "test.outer") outer = &event;
    if (name == "test.inner") inner = &event;
    if (name == "test.pool_chunk") ++pool_chunks;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(pool_chunks, 8u);
  const double outer_ts = outer->Find("ts")->number;
  const double outer_end = outer_ts + outer->Find("dur")->number;
  const double inner_ts = inner->Find("ts")->number;
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner->Find("dur")->number, outer_end + 1e-3);

  std::remove(path.c_str());
}

TEST(TraceTest, StopWithoutStartFailsCleanly) {
  ASSERT_FALSE(obs::TracingActive());
  std::string error;
  EXPECT_FALSE(obs::StopTracingAndWrite(&error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceTest, SpansAreFreeWhenInactive) {
  ASSERT_FALSE(obs::TracingActive());
  // Just exercise the disabled path; nothing to assert beyond "no
  // crash, no activation".
  for (int i = 0; i < 1000; ++i) {
    obs::SpanScope span("test.disabled");
  }
  EXPECT_FALSE(obs::TracingActive());
}

// ---------------------------------------------------------------------
// Validators
// ---------------------------------------------------------------------

TEST(ValidatorTest, AcceptsMinimalBenchReport) {
  const std::string report =
      "{\"schema\":\"wym-bench-report/v1\",\"bench\":\"t\",\"scale\":1,"
      "\"seed\":42,\"benchmarks\":[{\"name\":\"BM_X\",\"time_ns\":12.5,"
      "\"iterations\":100}],\"stages\":[],\"rates\":[],"
      "\"metrics\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}}";
  std::string error;
  EXPECT_TRUE(obs::ValidateBenchReportJson(report, &error)) << error;
}

TEST(ValidatorTest, RejectsBadBenchReports) {
  std::string error;
  // Wrong schema marker.
  EXPECT_FALSE(obs::ValidateBenchReportJson(
      "{\"schema\":\"other/v9\",\"bench\":\"t\",\"benchmarks\":[],"
      "\"metrics\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}}",
      &error));
  // Missing metrics.
  EXPECT_FALSE(obs::ValidateBenchReportJson(
      "{\"schema\":\"wym-bench-report/v1\",\"bench\":\"t\","
      "\"benchmarks\":[]}",
      &error));
  // Not JSON at all.
  EXPECT_FALSE(obs::ValidateBenchReportJson("not json", &error));
}

TEST(ValidatorTest, RejectsBadTraces) {
  std::string error;
  // traceEvents must be an array...
  EXPECT_FALSE(obs::ValidateTraceJson("{\"traceEvents\":1}", &error));
  // ...of complete events with the required members.
  EXPECT_FALSE(obs::ValidateTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"}]}", &error));
  EXPECT_FALSE(obs::ValidateTraceJson("[]", &error));
}

// ---------------------------------------------------------------------
// Stopwatch (the span clock)
// ---------------------------------------------------------------------

TEST(StopwatchTest, ElapsedNanosAndLapsAreConsistent) {
  Stopwatch watch;
  const std::uint64_t lap1 = watch.LapNanos();
  const std::uint64_t lap2 = watch.LapNanos();
  const std::uint64_t total = watch.ElapsedNanos();
  // Laps partition the elapsed time: their sum cannot exceed a total
  // read after both.
  EXPECT_LE(lap1 + lap2, total);
  // Elapsed* accessors agree on the unit of record.
  const double seconds = watch.ElapsedSeconds();
  EXPECT_GE(seconds, static_cast<double>(total) * 1e-9);
  watch.Reset();
  EXPECT_LT(watch.ElapsedNanos(), 1000000000ull);  // Fresh epoch.
}

// ---------------------------------------------------------------------
// Non-perturbation: tracing must not change any output byte.
// ---------------------------------------------------------------------

TEST(NonPerturbationTest, TracedRunIsByteIdenticalToUntracedRun) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.2);
  const data::Split split = data::DefaultSplit(dataset, 42);

  // Untraced run.
  ASSERT_FALSE(obs::TracingActive());
  core::WymModel plain;
  plain.Fit(split.train, split.validation);
  const std::vector<double> plain_probs =
      plain.PredictProbaBatch(split.test, static_cast<util::ThreadPool*>(nullptr));
  const std::string plain_path = "/tmp/wym_obs_plain.bin";
  ASSERT_TRUE(plain.SaveToFile(plain_path).ok());

  // Same run with tracing on.
  const std::string trace_path = "/tmp/wym_obs_identity_trace.json";
  obs::StartTracing(trace_path);
  core::WymModel traced;
  traced.Fit(split.train, split.validation);
  const std::vector<double> traced_probs =
      traced.PredictProbaBatch(split.test, static_cast<util::ThreadPool*>(nullptr));
  const std::string traced_model_path = "/tmp/wym_obs_traced.bin";
  ASSERT_TRUE(traced.SaveToFile(traced_model_path).ok());
  std::string error;
  ASSERT_TRUE(obs::StopTracingAndWrite(&error)) << error;

  // Bit-identical predictions and model bytes.
  ASSERT_EQ(plain_probs.size(), traced_probs.size());
  for (size_t i = 0; i < plain_probs.size(); ++i) {
    EXPECT_EQ(plain_probs[i], traced_probs[i]) << "record " << i;
  }
  EXPECT_EQ(ReadFileBytes(plain_path), ReadFileBytes(traced_model_path));

  // And the trace itself is a valid, non-trivial artifact: the Fit
  // stages and batch-predict spans must be present.
  const std::string trace = ReadFileBytes(trace_path);
  ASSERT_TRUE(obs::ValidateTraceJson(trace, &error)) << error;
  EXPECT_NE(trace.find("\"fit\""), std::string::npos);
  EXPECT_NE(trace.find("fit.unit_generation"), std::string::npos);
  EXPECT_NE(trace.find("predict.batch"), std::string::npos);

  std::remove(plain_path.c_str());
  std::remove(traced_model_path.c_str());
  std::remove(trace_path.c_str());
}

// Pipeline counters observed through a real run: Fit + predict
// populate the stage counters the DESIGN.md inventory promises.
TEST(PipelineCountersTest, FitAndPredictPopulateCounters) {
  obs::Registry& registry = obs::Registry::Global();
  const std::uint64_t fit_before =
      registry.GetCounter("fit.records").Value();
  const std::uint64_t predict_before =
      registry.GetCounter("predict.records").Value();

  const data::Dataset dataset = data::GenerateById("S-FZ", 7, 0.15);
  const data::Split split = data::DefaultSplit(dataset, 7);
  core::WymModel model;
  model.Fit(split.train, split.validation);
  (void)model.PredictProbaBatch(split.test, static_cast<util::ThreadPool*>(nullptr));

  EXPECT_EQ(registry.GetCounter("fit.records").Value() - fit_before,
            split.train.size());
  EXPECT_EQ(registry.GetCounter("predict.records").Value() - predict_before,
            split.test.size());
  // The batch path also records per-record latencies.
  EXPECT_GE(registry.GetHistogram("predict.record_ns").Snapshot().count,
            split.test.size());
}

// ---------------------------------------------------------------------------
// Telemetry: percentile edge cases, histogram deltas, request journal,
// flight recorder, windowed stats.

TEST(HistogramTest, PercentileEdgeCases) {
  // Empty snapshots answer 0 for any p, including NaN.
  const obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_EQ(empty.Percentile(std::numeric_limits<double>::quiet_NaN()), 0.0);

  // All mass in one bucket: value 100 lives in [64, 127]. p sweeps the
  // bucket linearly, and out-of-range p clamps to the edges instead of
  // extrapolating.
  obs::HistogramSnapshot single;
  single.buckets.assign(40, 0);
  single.buckets[6] = 100;  // [64, 127]
  single.count = 100;
  EXPECT_DOUBLE_EQ(single.Percentile(0.0), 64.0);
  EXPECT_DOUBLE_EQ(single.Percentile(-1.0), 64.0);
  EXPECT_DOUBLE_EQ(
      single.Percentile(std::numeric_limits<double>::quiet_NaN()), 64.0);
  EXPECT_DOUBLE_EQ(single.Percentile(0.5), 64.0 + 0.5 * (127.0 - 64.0));
  EXPECT_DOUBLE_EQ(single.Percentile(1.0), 127.0);
  EXPECT_DOUBLE_EQ(single.Percentile(2.0), 127.0);

  // A count larger than the bucket mass (possible only in hand-built
  // snapshots, but the rounding fallthrough it exercises is real) must
  // clamp to the last *non-empty* bucket, not the array's last bucket.
  obs::HistogramSnapshot overrun;
  overrun.buckets.assign(40, 0);
  overrun.buckets[3] = 5;  // [8, 15]
  overrun.count = 10;
  EXPECT_DOUBLE_EQ(overrun.Percentile(1.0), 15.0);
}

TEST(HistogramTest, DeltaSinceSubtractsBucketwise) {
  obs::Histogram& hist =
      obs::Registry::Global().GetHistogram("test.delta_since");
  hist.Reset();
  for (int i = 0; i < 10; ++i) hist.Record(100);
  const obs::HistogramSnapshot base = hist.Snapshot();
  for (int i = 0; i < 90; ++i) hist.Record(100);
  for (int i = 0; i < 5; ++i) hist.Record(100000);

  const obs::HistogramSnapshot delta = hist.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.count, 95u);
  EXPECT_EQ(delta.sum, 90u * 100u + 5u * 100000u);
  // The delta's percentiles see only the post-base samples.
  EXPECT_GE(delta.Percentile(0.99), 65536.0);

  // A base "ahead" of the snapshot (counter reset between samples)
  // saturates to zero instead of wrapping.
  const obs::HistogramSnapshot inverted = base.DeltaSince(hist.Snapshot());
  EXPECT_EQ(inverted.count, 0u);
  EXPECT_EQ(inverted.sum, 0u);
}

TEST(EventLogTest, SetRecordFieldSanitizesAndTruncates) {
  char field[8];
  obs::SetRecordField(field, sizeof(field), "a\"b\\c\nd");
  EXPECT_STREQ(field, "a_b_c_d");
  obs::SetRecordField(field, sizeof(field), "0123456789");
  EXPECT_STREQ(field, "0123456");  // cap-1 chars + NUL.
  obs::SetRecordField(field, sizeof(field), "");
  EXPECT_STREQ(field, "");
}

obs::RequestRecord MakeRecord(std::uint64_t sequence) {
  obs::RequestRecord record;
  record.sequence = sequence;
  obs::SetRecordField(record.client_id, sizeof(record.client_id), "cli");
  obs::SetRecordField(record.op, sizeof(record.op), "predict");
  obs::SetRecordField(record.model, sizeof(record.model), "default#1");
  record.admit_ns = 1000;
  record.queue_ns = 10;
  record.run_ns = 20;
  record.total_ns = 30;
  record.pairs = 2;
  record.batches = 1;
  record.cached = 1;
  return record;
}

TEST(EventLogTest, RenderRequestRecordHasFixedKeyOrder) {
  char buf[obs::kMaxJournalLine];
  const std::size_t n =
      obs::RenderRequestRecord(MakeRecord(42), buf, sizeof(buf));
  const std::string line(buf, n);
  EXPECT_EQ(line,
            "{\"schema\":\"wym-journal/v1\",\"seq\":42,\"id\":\"q00000042\","
            "\"client_id\":\"cli\",\"op\":\"predict\",\"model\":\"default#1\""
            ",\"outcome\":\"ok\",\"admit_ns\":1000,\"queue_ns\":10,"
            "\"run_ns\":20,\"total_ns\":30,\"pairs\":2,\"batches\":1,"
            "\"cached\":1}");

  char id[obs::RequestRecord::kIdBytes];
  EXPECT_STREQ(obs::RenderRequestId(7, id, sizeof(id)), "q00000007");

  // The rendered line passes its own validator.
  std::string error;
  EXPECT_TRUE(obs::ValidateJournalJson(line + "\n", &error)) << error;
}

TEST(EventLogTest, ValidateJournalJsonRejectsBadJournals) {
  std::string error;
  EXPECT_FALSE(obs::ValidateJournalJson("", &error));  // No records.
  EXPECT_FALSE(obs::ValidateJournalJson("not json\n", &error));
  EXPECT_FALSE(obs::ValidateJournalJson("{\"schema\":\"other\"}\n", &error));

  char buf[obs::kMaxJournalLine];
  std::size_t n = obs::RenderRequestRecord(MakeRecord(1), buf, sizeof(buf));
  const std::string line(buf, n);
  // Duplicate seq across lines is the corruption the validator exists
  // to catch; distinct seqs in any order are fine.
  EXPECT_FALSE(obs::ValidateJournalJson(line + "\n" + line + "\n", &error));
  n = obs::RenderRequestRecord(MakeRecord(2), buf, sizeof(buf));
  const std::string other(buf, n);
  EXPECT_TRUE(obs::ValidateJournalJson(other + "\n" + line + "\n", &error))
      << error;
}

TEST(EventLogTest, AppendsRotatesAndCounts) {
  const std::string path = "/tmp/wym_event_log_test.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());

  // Each rendered line is ~200 bytes; a 600-byte bound forces a
  // rotation every few appends.
  obs::EventLog::Options options;
  options.path = path;
  options.max_bytes = 600;
  obs::EventLog journal(options);
  std::string error;
  ASSERT_TRUE(journal.Open(&error)) << error;
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    journal.Append(MakeRecord(seq));
  }
  EXPECT_EQ(journal.lines_written(), 8u);
  EXPECT_GE(journal.rotations(), 1u);
  journal.Close();

  // Both the active file and the rotation slot hold valid journals, and
  // the active file respects the size bound.
  for (const std::string& file : {path, path + ".1"}) {
    std::ifstream in(file, std::ios::binary);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_TRUE(obs::ValidateJournalJson(buffer.str(), &error))
        << file << ": " << error;
    EXPECT_LE(buffer.str().size(), 600u) << file;
  }
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(FlightRecorderTest, RingKeepsLastNInOrder) {
  obs::FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_TRUE(recorder.SnapshotOrdered().empty());

  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    recorder.Record(MakeRecord(seq));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const std::vector<obs::RequestRecord> snapshot =
      recorder.SnapshotOrdered();
  ASSERT_EQ(snapshot.size(), 4u);  // Only the last `capacity` survive.
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].sequence, 7u + i);  // Oldest first: 7, 8, 9, 10.
  }
}

TEST(FlightRecorderTest, DumpJsonValidatesAndSanitizesReason) {
  obs::FlightRecorder recorder(8);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    recorder.Record(MakeRecord(seq));
  }
  const std::string dump = recorder.DumpJson("watchdog");
  std::string error;
  EXPECT_TRUE(obs::ValidateFlightRecorderJson(dump, &error)) << error;
  EXPECT_NE(dump.find("\"reason\":\"watchdog\""), std::string::npos);
  EXPECT_NE(dump.find("\"recorded\":3"), std::string::npos);

  // A hostile reason cannot break the JSON: quotes become '_'.
  const std::string hostile = recorder.DumpJson("a\"b");
  EXPECT_TRUE(obs::ValidateFlightRecorderJson(hostile, &error)) << error;

  // An empty recorder still dumps a valid artifact.
  obs::FlightRecorder idle(2);
  EXPECT_TRUE(obs::ValidateFlightRecorderJson(idle.DumpJson("drain"), &error))
      << error;

  EXPECT_FALSE(obs::ValidateFlightRecorderJson("{}", &error));
  EXPECT_FALSE(obs::ValidateFlightRecorderJson("nope", &error));
}

/// Scratch-metric options so window tests never race the serving
/// counters other tests touch.
obs::WindowTracker::Options ScratchWindowOptions(const std::string& prefix) {
  obs::WindowTracker::Options options;
  options.requests_metric = prefix + ".requests";
  options.shed_metric = prefix + ".shed";
  options.cache_hits_metric = prefix + ".hits";
  options.cache_misses_metric = prefix + ".misses";
  options.latency_metric = prefix + ".latency";
  options.window_ns = {10ull * 1000 * 1000 * 1000};
  return options;
}

TEST(WindowTrackerTest, DeltaReportsRatesOverTheWindow) {
  const std::string prefix = "test.window_rates";
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter& requests = registry.GetCounter(prefix + ".requests");
  obs::Counter& shed = registry.GetCounter(prefix + ".shed");
  obs::Counter& hits = registry.GetCounter(prefix + ".hits");
  obs::Counter& misses = registry.GetCounter(prefix + ".misses");
  obs::Histogram& latency = registry.GetHistogram(prefix + ".latency");
  requests.Reset();
  shed.Reset();
  hits.Reset();
  misses.Reset();
  latency.Reset();

  obs::WindowTracker tracker(ScratchWindowOptions(prefix));
  EXPECT_EQ(tracker.Delta(10ull * 1000 * 1000 * 1000).requests, 0u);

  tracker.Tick(0);
  requests.Add(100);
  shed.Add(10);
  hits.Add(30);
  misses.Add(70);
  for (int i = 0; i < 100; ++i) latency.Record(1000);
  tracker.Tick(10ull * 1000 * 1000 * 1000);  // +10s.

  const obs::WindowStats stats =
      tracker.Delta(10ull * 1000 * 1000 * 1000);
  EXPECT_EQ(stats.window_ns, 10ull * 1000 * 1000 * 1000);
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_DOUBLE_EQ(stats.qps, 10.0);
  EXPECT_EQ(stats.shed, 10u);
  EXPECT_DOUBLE_EQ(stats.shed_rate, 0.1);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate, 0.3);
  // 1000 lives in [512, 1023]: every percentile is inside that bucket.
  EXPECT_GE(stats.p50_ns, 512.0);
  EXPECT_LE(stats.p99_ns, 1023.0);
  EXPECT_EQ(tracker.samples(), 2u);
}

TEST(WindowTrackerTest, TelemetryJsonValidatesAndIsClockFree) {
  const std::string prefix = "test.window_json";
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter(prefix + ".requests").Reset();
  registry.GetHistogram(prefix + ".latency").Reset();

  obs::WindowTracker tracker(ScratchWindowOptions(prefix));
  tracker.Tick(1000);
  registry.GetCounter(prefix + ".requests").Add(5);
  tracker.Tick(2000);

  const std::string telemetry = tracker.TelemetryJson();
  std::string error;
  EXPECT_TRUE(obs::ValidateTelemetryJson(telemetry, &error))
      << error << "\n" << telemetry;
  // now_ns is the injected stamp of the newest sample — no wall clock.
  EXPECT_NE(telemetry.find("\"now_ns\":2000"), std::string::npos);

  // Same ticks, same counter trajectory => byte-identical artifact.
  registry.GetCounter(prefix + ".requests").Reset();
  obs::WindowTracker replay(ScratchWindowOptions(prefix));
  replay.Tick(1000);
  registry.GetCounter(prefix + ".requests").Add(5);
  replay.Tick(2000);
  EXPECT_EQ(replay.TelemetryJson(), telemetry);

  EXPECT_FALSE(obs::ValidateTelemetryJson("{}", &error));
  EXPECT_FALSE(obs::ValidateTelemetryJson(
      "{\"schema\":\"wym-telemetry/v1\",\"now_ns\":1,\"samples\":2,"
      "\"windows\":{}}",
      &error));  // Empty windows object.
}

}  // namespace
