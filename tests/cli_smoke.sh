#!/bin/sh
# End-to-end smoke test of the wym_cli binary: generate -> profile ->
# train (+save) -> explain (load) -> stats. Run by ctest with the CLI
# path as $1.
set -e
CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" list | grep -q "S-FZ"

"$CLI" generate --dataset S-FZ --out "$WORK/data.csv" --scale 0.3 --seed 7
test -s "$WORK/data.csv"

"$CLI" profile --data "$WORK/data.csv" | grep -q "records"

"$CLI" train-eval --data "$WORK/data.csv" --save "$WORK/model.wym" \
  | grep -q "test precision"
test -s "$WORK/model.wym"

"$CLI" explain --data "$WORK/data.csv" --record 2 --model "$WORK/model.wym" \
  | grep -q "prediction:"

"$CLI" explain --data "$WORK/data.csv" --record 2 --model "$WORK/model.wym" \
  --json | grep -q '"units"'

"$CLI" stats --data "$WORK/data.csv" --model "$WORK/model.wym" \
  | grep -q "global attribution"

# Error paths exit non-zero.
if "$CLI" generate --dataset NOPE --out "$WORK/x.csv" 2>/dev/null; then
  echo "expected failure for unknown dataset" >&2
  exit 1
fi

echo "cli smoke OK"
