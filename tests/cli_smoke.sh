#!/bin/sh
# End-to-end smoke test of the wym_cli binary: generate -> profile ->
# train (+save) -> explain (load) -> stats -> verify, plus the exit-code
# contract (1 = usage, 2 = I/O error, 3 = corruption). Run by ctest with
# the CLI path as $1 and (optionally) the wym_lint path as $2, which
# enables the analyzer's own exit-code contract checks (0 = clean,
# 5 = findings, 6 = stale suppression) against throwaway fixture trees.
# When $3 names the wym_serve binary, the serving lifecycle rides along
# too: start, readiness, query, hot-load, corrupt-reject, SIGTERM drain.
set -e
CLI="$1"
LINT="$2"
SERVE="$3"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" list | grep -q "S-FZ"

"$CLI" generate --dataset S-FZ --out "$WORK/data.csv" --scale 0.3 --seed 7
test -s "$WORK/data.csv"

"$CLI" profile --data "$WORK/data.csv" | grep -q "records"

"$CLI" train-eval --data "$WORK/data.csv" --save "$WORK/model.wym" \
  | grep -q "test precision"
test -s "$WORK/model.wym"

"$CLI" explain --data "$WORK/data.csv" --record 2 --model "$WORK/model.wym" \
  | grep -q "prediction:"

"$CLI" explain --data "$WORK/data.csv" --record 2 --model "$WORK/model.wym" \
  --json | grep -q '"units"'

"$CLI" stats --data "$WORK/data.csv" --model "$WORK/model.wym" \
  | grep -q "global attribution"

# verify: an intact model file passes and lists its sections.
"$CLI" verify --model "$WORK/model.wym" | grep -q "verified"

# Expects an exact exit code from a command whose failure output goes to
# stderr only.
expect_exit() {
  want="$1"
  shift
  set +e
  "$@" 2>"$WORK/stderr.txt"
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "expected exit $want, got $got from: $*" >&2
    exit 1
  fi
  test -s "$WORK/stderr.txt" || {
    echo "expected a stderr message from: $*" >&2
    exit 1
  }
}

# Exit 3: a corrupted model file (one byte flipped mid-file).
size=$(wc -c < "$WORK/model.wym")
half=$((size / 2))
{
  head -c "$half" "$WORK/model.wym"
  printf 'X'
  tail -c +"$((half + 2))" "$WORK/model.wym"
} > "$WORK/corrupt.wym"
expect_exit 3 "$CLI" verify --model "$WORK/corrupt.wym"
expect_exit 3 "$CLI" explain --data "$WORK/data.csv" --record 2 \
  --model "$WORK/corrupt.wym"

# Exit 2: a model file that does not exist.
expect_exit 2 "$CLI" verify --model "$WORK/no-such-model.wym"

# Exit 1: usage errors.
expect_exit 1 "$CLI" verify
expect_exit 1 "$CLI" generate --dataset NOPE --out "$WORK/x.csv"

# A truncated save must never leave a damaged file behind: verify still
# passes on the original after the failed overwrite attempt above.
"$CLI" verify --model "$WORK/model.wym" > /dev/null

# ---------------------------------------------------------------------
# wym_lint exit-code contract (when the analyzer path was provided).
# Findings go to stdout, not stderr, so this needs its own helper.
if [ -n "$LINT" ]; then
  expect_lint_exit() {
    want="$1"
    shift
    set +e
    "$@" > "$WORK/lint-out.txt" 2>&1
    got=$?
    set -e
    if [ "$got" -ne "$want" ]; then
      echo "expected exit $want, got $got from: $*" >&2
      cat "$WORK/lint-out.txt" >&2
      exit 1
    fi
  }

  # Exit 0: a clean fixture tree.
  mkdir -p "$WORK/clean/src/core"
  printf 'namespace wym::core {\nint F() { return 1; }\n}\n' \
    > "$WORK/clean/src/core/m.cc"
  expect_lint_exit 0 "$LINT" lint "$WORK/clean"
  expect_lint_exit 0 "$LINT" graph "$WORK/clean"
  expect_lint_exit 0 "$LINT" taint "$WORK/clean"

  # Exit 5: an upward include (src/la reaching into src/core).
  mkdir -p "$WORK/up/src/la" "$WORK/up/src/core"
  printf '#pragma once\n' > "$WORK/up/src/core/model.h"
  printf '#include "core/model.h"\n' > "$WORK/up/src/la/vec.cc"
  expect_lint_exit 5 "$LINT" graph "$WORK/up"
  grep -q 'layer-order' "$WORK/lint-out.txt"

  # Exit 5: a taint chain (raw clock helper called from SaveToFile).
  mkdir -p "$WORK/taint/src/core"
  {
    printf 'namespace wym::core {\n'
    printf 'long Ticks() { return std::chrono::steady_clock::now()'
    printf '.time_since_epoch().count(); }\n'
    printf 'void SaveToFile(const char* p) { long t = Ticks(); '
    printf '(void)p; (void)t; }\n'
    printf '}\n'
  } > "$WORK/taint/src/core/m.cc"
  expect_lint_exit 5 "$LINT" taint "$WORK/taint"
  grep -q 'taint-flow' "$WORK/lint-out.txt"

  # Exit 6: a stale suppression outranks plain findings.
  mkdir -p "$WORK/stale/src/core"
  {
    printf '// wym-lint: allow(layer-order): excuses nothing\n'
    printf 'int x;\n'
  } > "$WORK/stale/src/core/m.cc"
  expect_lint_exit 6 "$LINT" graph "$WORK/stale"
  grep -q 'stale-suppression' "$WORK/lint-out.txt"

  # JSON output is schema-tagged and byte-identical across runs.
  "$LINT" taint "$WORK/taint" --format=json > "$WORK/a.json" || true
  "$LINT" taint "$WORK/taint" --format=json > "$WORK/b.json" || true
  grep -q 'wym-analysis-report/v1' "$WORK/a.json"
  cmp -s "$WORK/a.json" "$WORK/b.json"

  # Exit 2 stays reserved for usage / IO errors.
  expect_exit 2 "$LINT" graph "$WORK/no-such-dir"
fi

# ---------------------------------------------------------------------
# wym_serve lifecycle (when the server path was provided): the
# robustness contract end to end, over a real Unix socket.
if [ -n "$SERVE" ]; then
  SOCK="$WORK/wym.sock"
  # Telemetry rides along: a request journal with a deliberately tiny
  # rotation bound (1 KB, a handful of lines) and a periodic
  # wym-telemetry/v1 export.
  "$SERVE" --socket "$SOCK" --model "default=$WORK/model.wym" \
    --stats-out "$WORK/final-stats.json" \
    --journal "$WORK/journal.jsonl" --journal-max-kb 1 \
    --telemetry-out "$WORK/telemetry.json" --telemetry-period 1 \
    > "$WORK/serve.log" 2>&1 &
  # The binary is backgrounded directly (no subshell wrapper), so $! is
  # the server's own PID — the one SIGTERM must reach for a clean drain.
  SERVE_PID=$!

  # Readiness: ping until the socket answers (query retries connects
  # with backoff internally; the loop bounds total startup patience).
  ready=0
  for _ in 1 2 3 4 5 6 7 8 9 10; do
    if "$CLI" query --socket "$SOCK" --op ping > /dev/null 2>&1; then
      ready=1
      break
    fi
    sleep 1
  done
  if [ "$ready" -ne 1 ]; then
    echo "wym_serve never became ready" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi

  # Predict over the wire; a repeat of the same pair is a cache hit.
  "$CLI" query --socket "$SOCK" \
    --left 'sony dslr a100 camera|10.2mp' \
    --right 'sony dslr-a100|10.2 megapixel' | grep -q "probability"
  "$CLI" query --socket "$SOCK" \
    --left 'sony dslr a100 camera|10.2mp' \
    --right 'sony dslr-a100|10.2 megapixel' | grep -q "(cached)"

  # Hot-load the same file under a second name, then query it.
  "$CLI" query --socket "$SOCK" --op load_model \
    --name beta --path "$WORK/model.wym" | grep -q '"beta"'
  "$CLI" query --socket "$SOCK" --op list_models | grep -q '"beta"'
  "$CLI" query --socket "$SOCK" --model beta \
    --left 'a|b' --right 'a|b' | grep -q "prediction"

  # A corrupt hot-load is rejected with the corruption exit code and
  # the previously loaded model keeps serving.
  expect_exit 3 "$CLI" query --socket "$SOCK" --op load_model \
    --name default --path "$WORK/corrupt.wym"
  "$CLI" query --socket "$SOCK" \
    --left 'canon eos|8mp' --right 'canon eos 350d|8mp' \
    | grep -q "prediction"

  # Stats exposes the overload-policy state plus the telemetry sections
  # (windows/journal/recorder appear only when the sinks are configured;
  # this server runs with a journal and telemetry export, no recorder).
  "$CLI" query --socket "$SOCK" --op stats > "$WORK/stats.json"
  grep -q '"queue_bound"' "$WORK/stats.json"
  grep -q '"windows"' "$WORK/stats.json"
  grep -q '"journal"' "$WORK/stats.json"

  # Live observability over the running server: top renders windowed
  # rates, tail prints the newest journal lines.
  "$CLI" top --socket "$SOCK" | grep -q "qps"
  "$CLI" tail --file "$WORK/journal.jsonl" --lines 3 \
    | grep -q '"schema":"wym-journal/v1"'

  # SIGTERM: graceful drain — exit 0 and the final stats snapshot
  # flushed to --stats-out with the drained state recorded.
  kill -TERM "$SERVE_PID"
  set +e
  wait "$SERVE_PID"
  serve_status=$?
  set -e
  if [ "$serve_status" -ne 0 ]; then
    echo "wym_serve exited $serve_status on SIGTERM" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  grep -q '"draining":true' "$WORK/final-stats.json"

  # The session answered enough requests to cross the 1 KB journal
  # bound at least once, so both the active file and the rotated .1
  # file must exist and validate as wym-journal/v1; the drain also
  # flushed a final wym-telemetry/v1 export.
  "$CLI" validate-report --file "$WORK/journal.jsonl" \
    | grep -q "request journal"
  test -s "$WORK/journal.jsonl.1"
  "$CLI" validate-report --file "$WORK/journal.jsonl.1" > /dev/null
  "$CLI" validate-report --file "$WORK/telemetry.json" \
    | grep -q "valid telemetry"

  # -------------------------------------------------------------------
  # Watchdog + flight recorder: a second short-lived server with debug
  # ops enabled. A debug_sleep request wedges a worker past the
  # watchdog bound; the watchdog answers it (deadline exceeded -> CLI
  # exit 2) and dumps the flight-recorder ring as a postmortem that
  # records the wedged request.
  SOCK2="$WORK/wym2.sock"
  "$SERVE" --socket "$SOCK2" --model "default=$WORK/model.wym" \
    --enable-debug-ops --watchdog-ms 100 --watchdog-interval-ms 50 \
    --recorder 16 --recorder-out "$WORK/postmortem.json" \
    > "$WORK/serve2.log" 2>&1 &
  SERVE2_PID=$!
  ready=0
  for _ in 1 2 3 4 5 6 7 8 9 10; do
    if "$CLI" query --socket "$SOCK2" --op ping > /dev/null 2>&1; then
      ready=1
      break
    fi
    sleep 1
  done
  if [ "$ready" -ne 1 ]; then
    echo "wym_serve (watchdog scenario) never became ready" >&2
    cat "$WORK/serve2.log" >&2
    exit 1
  fi
  expect_exit 2 "$CLI" query --socket "$SOCK2" --op debug_sleep \
    --sleep-ms 5000 --retries 0 --timeout-ms 10000
  # The dump happens on the watchdog thread right after the answer, so
  # give the file a moment to land.
  dumped=0
  for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    if [ -s "$WORK/postmortem.json" ]; then
      dumped=1
      break
    fi
    sleep 0.2
  done
  if [ "$dumped" -ne 1 ]; then
    echo "watchdog never dumped the flight recorder" >&2
    cat "$WORK/serve2.log" >&2
    exit 1
  fi
  grep -q '"outcome":"wedged"' "$WORK/postmortem.json"
  grep -q '"reason":"watchdog"' "$WORK/postmortem.json"
  "$CLI" validate-report --file "$WORK/postmortem.json" \
    | grep -q "flight-recorder dump"
  kill -TERM "$SERVE2_PID"
  set +e
  wait "$SERVE2_PID"
  serve2_status=$?
  set -e
  if [ "$serve2_status" -ne 0 ]; then
    echo "wym_serve (watchdog scenario) exited $serve2_status" >&2
    cat "$WORK/serve2.log" >&2
    exit 1
  fi
fi

echo "cli smoke OK"
