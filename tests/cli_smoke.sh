#!/bin/sh
# End-to-end smoke test of the wym_cli binary: generate -> profile ->
# train (+save) -> explain (load) -> stats -> verify, plus the exit-code
# contract (1 = usage, 2 = I/O error, 3 = corruption). Run by ctest with
# the CLI path as $1.
set -e
CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" list | grep -q "S-FZ"

"$CLI" generate --dataset S-FZ --out "$WORK/data.csv" --scale 0.3 --seed 7
test -s "$WORK/data.csv"

"$CLI" profile --data "$WORK/data.csv" | grep -q "records"

"$CLI" train-eval --data "$WORK/data.csv" --save "$WORK/model.wym" \
  | grep -q "test precision"
test -s "$WORK/model.wym"

"$CLI" explain --data "$WORK/data.csv" --record 2 --model "$WORK/model.wym" \
  | grep -q "prediction:"

"$CLI" explain --data "$WORK/data.csv" --record 2 --model "$WORK/model.wym" \
  --json | grep -q '"units"'

"$CLI" stats --data "$WORK/data.csv" --model "$WORK/model.wym" \
  | grep -q "global attribution"

# verify: an intact model file passes and lists its sections.
"$CLI" verify --model "$WORK/model.wym" | grep -q "verified"

# Expects an exact exit code from a command whose failure output goes to
# stderr only.
expect_exit() {
  want="$1"
  shift
  set +e
  "$@" 2>"$WORK/stderr.txt"
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "expected exit $want, got $got from: $*" >&2
    exit 1
  fi
  test -s "$WORK/stderr.txt" || {
    echo "expected a stderr message from: $*" >&2
    exit 1
  }
}

# Exit 3: a corrupted model file (one byte flipped mid-file).
size=$(wc -c < "$WORK/model.wym")
half=$((size / 2))
{
  head -c "$half" "$WORK/model.wym"
  printf 'X'
  tail -c +"$((half + 2))" "$WORK/model.wym"
} > "$WORK/corrupt.wym"
expect_exit 3 "$CLI" verify --model "$WORK/corrupt.wym"
expect_exit 3 "$CLI" explain --data "$WORK/data.csv" --record 2 \
  --model "$WORK/corrupt.wym"

# Exit 2: a model file that does not exist.
expect_exit 2 "$CLI" verify --model "$WORK/no-such-model.wym"

# Exit 1: usage errors.
expect_exit 1 "$CLI" verify
expect_exit 1 "$CLI" generate --dataset NOPE --out "$WORK/x.csv"

# A truncated save must never leave a damaged file behind: verify still
# passes on the original after the failed overwrite attempt above.
"$CLI" verify --model "$WORK/model.wym" > /dev/null

echo "cli smoke OK"
