// End-to-end pipeline tests: generator -> WYM -> predictions ->
// explanations, plus the parameterized cross-dataset property sweep.

#include <gtest/gtest.h>

#include <cmath>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/csv.h"
#include "data/split.h"
#include "explain/evaluation.h"
#include "ml/metrics.h"

namespace wym {
namespace {

TEST(IntegrationTest, FullPipelineOnEasyDataset) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.5);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel model;
  model.Fit(split.train, split.validation);
  ASSERT_TRUE(model.fitted());

  const double f1 =
      ml::F1Score(split.test.Labels(), model.PredictDataset(split.test));
  EXPECT_GT(f1, 0.85);
}

TEST(IntegrationTest, ExplanationsAreComplete) {
  const data::Dataset dataset = data::GenerateById("S-IA", 7, 0.3);
  const data::Split split = data::DefaultSplit(dataset, 7);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  for (size_t i = 0; i < 10; ++i) {
    const data::EmRecord& record = split.test.records[i];
    const core::Explanation explanation = model.Explain(record);
    // The explanation's prediction agrees with Predict.
    EXPECT_EQ(explanation.prediction, model.Predict(record));
    EXPECT_GE(explanation.probability, 0.0);
    EXPECT_LE(explanation.probability, 1.0);
    // Every unit has finite relevance in [-1, 1] and finite impact.
    for (const auto& unit : explanation.units) {
      EXPECT_GE(unit.relevance, -1.0);
      EXPECT_LE(unit.relevance, 1.0);
      EXPECT_TRUE(std::isfinite(unit.impact));
    }
    // And the units cover the tokens of the record.
    const core::TokenizedRecord tokenized = model.Prepare(record);
    std::vector<core::DecisionUnit> units;
    for (const auto& eu : explanation.units) units.push_back(eu.unit);
    EXPECT_TRUE(
        core::CheckUnitConstraints(units, tokenized.left, tokenized.right));
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  const data::Dataset dataset = data::GenerateById("S-BR", 11, 0.5);
  const data::Split split = data::DefaultSplit(dataset, 11);
  core::WymModel a, b;
  a.Fit(split.train, split.validation);
  b.Fit(split.train, split.validation);
  for (size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(split.test.records[i]),
                     b.PredictProba(split.test.records[i]));
  }
}

TEST(IntegrationTest, RefitIsIdempotent) {
  const data::Dataset dataset = data::GenerateById("S-BR", 13, 0.4);
  const data::Split split = data::DefaultSplit(dataset, 13);
  core::WymModel model;
  model.Fit(split.train, split.validation);
  const double before = model.PredictProba(split.test.records[0]);
  model.Fit(split.train, split.validation);  // Second Fit, same data.
  EXPECT_DOUBLE_EQ(model.PredictProba(split.test.records[0]), before);
}

TEST(IntegrationTest, CsvRoundTripTrainsIdentically) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 21, 0.2);
  const auto parsed = data::DatasetFromCsv(data::DatasetToCsv(dataset),
                                           dataset.name);
  ASSERT_TRUE(parsed.ok());
  const data::Split split_a = data::DefaultSplit(dataset, 5);
  const data::Split split_b = data::DefaultSplit(parsed.value(), 5);
  core::WymModel a, b;
  a.Fit(split_a.train, split_a.validation);
  b.Fit(split_b.train, split_b.validation);
  for (size_t i = 0; i < split_a.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(split_a.test.records[i]),
                     b.PredictProba(split_b.test.records[i]));
  }
}

TEST(IntegrationTest, SimplifiedFeaturesStillLearn) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.4);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymConfig config;
  config.simplified_features = true;
  core::WymModel model(config);
  model.Fit(split.train, split.validation);
  EXPECT_GT(ml::F1Score(split.test.Labels(),
                        model.PredictDataset(split.test)),
            0.7);
}

TEST(IntegrationTest, MatchExplanationsLeanOnPairedUnits) {
  // Figure 3 shape: for confidently-matching records the top positive
  // impact comes from paired units; for non-matching records the negative
  // evidence comes from unpaired units.
  const data::Dataset dataset = data::GenerateById("S-DA", 17, 0.4);
  const data::Split split = data::DefaultSplit(dataset, 17);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  size_t checked_matches = 0, paired_top = 0;
  for (const auto& record : split.test.records) {
    if (record.label != 1) continue;
    const core::Explanation explanation = model.Explain(record);
    if (explanation.prediction != 1 || explanation.units.empty()) continue;
    ++checked_matches;
    // Highest-impact unit.
    size_t best = explanation.RankByImpactMagnitude().front();
    if (explanation.units[best].unit.paired &&
        explanation.units[best].impact > 0) {
      ++paired_top;
    }
    if (checked_matches == 20) break;
  }
  ASSERT_GT(checked_matches, 10u);
  EXPECT_GT(static_cast<double>(paired_top) /
                static_cast<double>(checked_matches),
            0.5);
}

// Cross-dataset property sweep (TEST_P): every benchmark dataset trains
// end-to-end at small scale and produces structurally valid explanations.
class DatasetSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSweepTest, TrainsAndExplains) {
  const data::Dataset dataset = data::GenerateById(GetParam(), 42, 0.25);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  const std::vector<int> predicted = model.PredictDataset(split.test);
  // Sanity: better than labeling everything positive.
  std::vector<int> all_positive(split.test.size(), 1);
  EXPECT_GE(ml::F1Score(split.test.Labels(), predicted) + 0.05,
            ml::F1Score(split.test.Labels(), all_positive))
      << GetParam();

  const core::Explanation explanation =
      model.Explain(split.test.records.front());
  for (const auto& unit : explanation.units) {
    EXPECT_TRUE(std::isfinite(unit.impact)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarkDatasets, DatasetSweepTest,
    ::testing::Values("S-DG", "S-DA", "S-AG", "S-WA", "S-BR", "S-IA",
                      "S-FZ", "T-AB", "D-IA", "D-DA", "D-DG", "D-WA"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace wym
