#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "embedding/semantic_encoder.h"
#include "ml/classifier_pool.h"
#include "nn/mlp.h"
#include "util/random.h"
#include "util/serde.h"

namespace wym {
namespace {

TEST(SerdeTest, PrimitivesRoundTrip) {
  std::stringstream stream;
  serde::Serializer s(&stream);
  s.Tag("test/v1");
  s.U64(42);
  s.I64(-7);
  s.Bool(true);
  s.F64(0.1);  // Not exactly representable: hexfloat must round-trip.
  s.F64(-1e300);
  s.Str("hello world\nwith newline");
  s.VecF64({1.5, -2.25, 0.0});
  s.VecF32({0.5f});
  s.VecU64({});

  serde::Deserializer d(&stream);
  EXPECT_TRUE(d.Tag("test/v1"));
  EXPECT_EQ(d.U64(), 42u);
  EXPECT_EQ(d.I64(), -7);
  EXPECT_TRUE(d.Bool());
  EXPECT_EQ(d.F64(), 0.1);  // Exact.
  EXPECT_EQ(d.F64(), -1e300);
  EXPECT_EQ(d.Str(), "hello world\nwith newline");
  EXPECT_EQ(d.VecF64(), (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(d.VecF32(), (std::vector<float>{0.5f}));
  EXPECT_TRUE(d.VecU64().empty());
  EXPECT_TRUE(d.ok());
}

TEST(SerdeTest, TagMismatchFails) {
  std::stringstream stream;
  serde::Serializer s(&stream);
  s.Tag("alpha/v1");
  serde::Deserializer d(&stream);
  EXPECT_FALSE(d.Tag("beta/v1"));
  EXPECT_FALSE(d.ok());
}

TEST(SerdeTest, TruncatedInputFails) {
  std::stringstream stream("3");
  serde::Deserializer d(&stream);
  (void)d.U64();
  (void)d.U64();  // Nothing left.
  EXPECT_FALSE(d.ok());
}

TEST(SerdeTest, AbsurdVectorLengthFails) {
  std::stringstream stream("999999999999 1 2 3");
  serde::Deserializer d(&stream);
  (void)d.VecF64();
  EXPECT_FALSE(d.ok());
}

// Regression: Str() used to consume the byte after the length blindly.
// On corrupt input whose separator is not the ' ' the Serializer wrote,
// that byte belongs to the string body, and swallowing it silently
// shifted every subsequent read by one.
TEST(SerdeTest, StrRejectsMissingSeparator) {
  std::stringstream stream("5-hello 7");
  serde::Deserializer d(&stream);
  EXPECT_EQ(d.Str(), "");
  EXPECT_FALSE(d.ok());
}

TEST(SerdeTest, StrRejectsLengthAtEof) {
  std::stringstream stream("5");
  serde::Deserializer d(&stream);
  (void)d.Str();
  EXPECT_FALSE(d.ok());
}

TEST(SerdeTest, StrRejectsTruncatedBody) {
  std::stringstream stream("10 short");
  serde::Deserializer d(&stream);
  (void)d.Str();
  EXPECT_FALSE(d.ok());
}

TEST(MlpSerdeTest, RoundTripPredictsIdentically) {
  Rng rng(3);
  la::Matrix x(64, 4);
  std::vector<double> y(64);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t j = 0; j < 4; ++j) x.At(i, j) = rng.Uniform(-1, 1);
    y[i] = x.At(i, 0) - x.At(i, 2);
  }
  nn::MlpOptions options;
  options.hidden = {8, 4};
  options.epochs = 20;
  nn::Mlp original(options);
  original.Fit(x, y);

  std::stringstream stream;
  serde::Serializer s(&stream);
  original.Save(&s);
  nn::Mlp restored;
  serde::Deserializer d(&stream);
  ASSERT_TRUE(restored.Load(&d));
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(restored.Predict(x.RowVector(i)),
                     original.Predict(x.RowVector(i)));
  }
}

// Every pool member must round-trip through SaveState/LoadState with
// bit-identical predictions.
class ClassifierSerdeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassifierSerdeTest, RoundTripPredictsIdentically) {
  Rng rng(11);
  la::Matrix x(120, 3);
  std::vector<int> y(120);
  for (size_t i = 0; i < 120; ++i) {
    y[i] = static_cast<int>(i % 2);
    x.At(i, 0) = rng.Normal(y[i] == 1 ? 1.0 : -1.0, 0.5);
    x.At(i, 1) = rng.Normal(0, 1);
    x.At(i, 2) = rng.Normal(y[i] == 1 ? -0.5 : 0.5, 0.7);
  }
  auto original = ml::MakeClassifier(GetParam(), 5);
  original->Fit(x, y);

  std::stringstream stream;
  serde::Serializer s(&stream);
  original->SaveState(&s);

  auto restored = ml::MakeClassifier(GetParam(), 99);  // Seed irrelevant.
  serde::Deserializer d(&stream);
  ASSERT_TRUE(restored->LoadState(&d)) << GetParam();
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(restored->PredictProba(x.RowVector(i)),
                     original->PredictProba(x.RowVector(i)))
        << GetParam();
  }
  // The impact bookkeeping must survive as well.
  EXPECT_EQ(restored->SignedImportance(), original->SignedImportance())
      << GetParam();
}

TEST_P(ClassifierSerdeTest, RejectsWrongTag) {
  std::stringstream stream;
  serde::Serializer s(&stream);
  s.Tag("garbage/v1");
  auto classifier = ml::MakeClassifier(GetParam(), 1);
  serde::Deserializer d(&stream);
  EXPECT_FALSE(classifier->LoadState(&d)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPoolMembers, ClassifierSerdeTest,
                         ::testing::ValuesIn(ml::PoolMemberNames()),
                         [](const auto& info) { return info.param; });

TEST(EncoderSerdeTest, RoundTripEncodesIdentically) {
  embedding::SemanticEncoderOptions options;
  options.hash_dim = 16;
  options.cooc_dim = 8;
  embedding::SemanticEncoder original(options);
  original.Fit({{"digital", "camera", "sony"}, {"digital", "lens"}});

  std::stringstream stream;
  serde::Serializer s(&stream);
  original.Save(&s);
  embedding::SemanticEncoder restored;
  serde::Deserializer d(&stream);
  ASSERT_TRUE(restored.Load(&d));
  EXPECT_EQ(restored.dim(), original.dim());
  EXPECT_EQ(restored.EncodeTokens({"digital", "camera", "37.5"}),
            original.EncodeTokens({"digital", "camera", "37.5"}));
}

TEST(WymModelSerdeTest, FileRoundTripPredictsIdentically) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.3);
  const data::Split split = data::DefaultSplit(dataset, 42);
  core::WymModel original;
  original.Fit(split.train, split.validation);

  const std::string path = "/tmp/wym_model_roundtrip.bin";
  ASSERT_TRUE(original.SaveToFile(path).ok());

  auto loaded = core::WymModel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const core::WymModel& restored = loaded.value();
  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.matcher().best_name(), original.matcher().best_name());

  for (size_t i = 0; i < split.test.size(); ++i) {
    const data::EmRecord& record = split.test.records[i];
    EXPECT_DOUBLE_EQ(restored.PredictProba(record),
                     original.PredictProba(record));
  }
  // Explanations round-trip too (units + relevance + impacts).
  const core::Explanation a = original.Explain(split.test.records[0]);
  const core::Explanation b = restored.Explain(split.test.records[0]);
  ASSERT_EQ(a.units.size(), b.units.size());
  for (size_t u = 0; u < a.units.size(); ++u) {
    EXPECT_EQ(a.units[u].unit.Label(), b.units[u].unit.Label());
    EXPECT_DOUBLE_EQ(a.units[u].relevance, b.units[u].relevance);
    EXPECT_DOUBLE_EQ(a.units[u].impact, b.units[u].impact);
  }
}

TEST(WymModelSerdeTest, SaveUnfittedFails) {
  core::WymModel model;
  EXPECT_FALSE(model.SaveToFile("/tmp/never.bin").ok());
}

TEST(WymModelSerdeTest, LoadMissingFileFails) {
  EXPECT_FALSE(core::WymModel::LoadFromFile("/tmp/nonexistent.wym").ok());
}

TEST(WymModelSerdeTest, RuleCountMismatchIsRejected) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 7, 0.15);
  const data::Split split = data::DefaultSplit(dataset, 7);
  core::WymConfig config;
  config.generator.rules.push_back(core::EqualProductCodeRule());
  core::WymModel model(config);
  model.Fit(split.train, split.validation);
  const std::string path = "/tmp/wym_model_rules.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());

  // Loading without re-supplying the rule must fail loudly...
  EXPECT_FALSE(core::WymModel::LoadFromFile(path).ok());
  // ...and succeed when the rule is passed back in.
  auto loaded = core::WymModel::LoadFromFile(
      path, {core::EqualProductCodeRule()});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded.value().PredictProba(split.test.records[0]),
                   model.PredictProba(split.test.records[0]));
}

}  // namespace
}  // namespace wym
