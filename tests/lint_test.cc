// Unit tests for the wym-lint scanner (util/source_scan): the C++
// lexer's region classification and each check firing / staying quiet /
// being suppressed on synthetic snippets. Every snippet lives in a
// string literal, which is itself the first regression test: the lexer
// masks literal bodies, so this file scans clean under the real linter.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/source_scan.h"

namespace wym::lint {
namespace {

std::vector<Finding> Scan(const std::string& path, const std::string& text,
                          ScanStats* stats = nullptr) {
  return ScanSource(path, text, stats);
}

bool HasCheck(const std::vector<Finding>& findings, const std::string& name) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.check == name; });
}

int LineOf(const std::vector<Finding>& findings, const std::string& name) {
  for (const Finding& f : findings) {
    if (f.check == name) return f.line;
  }
  return -1;
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

TEST(LexLinesTest, MasksLineCommentsOutOfCode) {
  const auto lines = LexLines("int a;  // std::rand() here\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int a;"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("std::rand() here"), std::string::npos);
}

TEST(LexLinesTest, MasksBlockCommentsAcrossLines) {
  const auto lines = LexLines("int a; /* std::rand()\n rand() */ int b;\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[1].code.find("int b;"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("std::rand()"), std::string::npos);
}

TEST(LexLinesTest, MasksStringBodiesButKeepsDelimiters) {
  const auto lines = LexLines("auto s = \"std::rand()\"; int c;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find('"'), std::string::npos);
  EXPECT_NE(lines[0].code.find("int c;"), std::string::npos);
}

TEST(LexLinesTest, HandlesEscapedQuotesInsideStrings) {
  const auto lines = LexLines("auto s = \"a\\\"rand()\\\"b\"; int d;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int d;"), std::string::npos);
}

TEST(LexLinesTest, MasksRawStringsIncludingCustomDelimiters) {
  const auto lines =
      LexLines("auto s = R\"xy(std::rand() \" )\" )xy\"; int e;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int e;"), std::string::npos);
}

TEST(LexLinesTest, MultiLineRawStringMasksEveryLine) {
  const auto lines = LexLines("auto s = R\"(\nstd::rand();\n)\"; int f;\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[2].code.find("int f;"), std::string::npos);
}

TEST(LexLinesTest, DigitSeparatorIsNotACharLiteral) {
  const auto lines = LexLines("int n = 1'000'000; int m = g(2);\n");
  ASSERT_EQ(lines.size(), 1u);
  // If the separator opened a char literal, g(2) would be masked.
  EXPECT_NE(lines[0].code.find("g(2)"), std::string::npos);
}

TEST(LexLinesTest, CharLiteralBodyIsMasked) {
  const auto lines = LexLines("char c = ';'; int g;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find("int g;"), std::string::npos);
  // The ';' inside the literal is masked; the two real semicolons stay.
  EXPECT_EQ(std::count(lines[0].code.begin(), lines[0].code.end(), ';'), 2);
}

TEST(LexLinesTest, PreprocessorLinesKeepIncludePaths) {
  const auto lines = LexLines("#include \"la/kernels.h\"\nint x;\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].preprocessor);
  EXPECT_FALSE(lines[1].preprocessor);
  EXPECT_NE(lines[0].code.find("la/kernels.h"), std::string::npos);
}

TEST(LexLinesTest, PreprocessorContinuationStaysPreprocessor) {
  const auto lines = LexLines("#define FOO(a) \\\n  ((a) + 1)\nint y;\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(lines[0].preprocessor);
  EXPECT_TRUE(lines[1].preprocessor);
  EXPECT_FALSE(lines[2].preprocessor);
}

// ---------------------------------------------------------------------
// Determinism checks
// ---------------------------------------------------------------------

TEST(NoRandCheckTest, FiresOnRandOutsideUtilAndBench) {
  const std::string snippet = "int f() { return std::rand(); }\n";
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", snippet), "no-rand"));
  EXPECT_FALSE(HasCheck(Scan("src/util/x.cc", snippet), "no-rand"));
  EXPECT_FALSE(HasCheck(Scan("bench/x.cc", snippet), "no-rand"));
}

TEST(NoRandCheckTest, FiresOnTimeButNotLookalikes) {
  EXPECT_TRUE(
      HasCheck(Scan("src/a.cc", "long t() { return time(nullptr); }\n"),
               "no-rand"));
  EXPECT_TRUE(HasCheck(Scan("src/a.cc", "std::random_device rd;\n"),
                       "no-rand"));
  // Clock reads moved to the no-raw-clock check.
  EXPECT_FALSE(HasCheck(
      Scan("src/a.cc", "auto t = std::chrono::steady_clock::now();\n"),
      "no-rand"));
  // Identifiers merely containing the banned substrings do not fire.
  EXPECT_FALSE(HasCheck(
      Scan("src/a.cc", "double r = Runtime(x); int b = brand; h = now;\n"),
      "no-rand"));
}

TEST(NoRawClockCheckTest, FiresOnClockTypesAndNowCallsOutsideUtil) {
  const std::string now_call =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", now_call), "no-raw-clock"));
  // Unlike no-rand, bench/ and tests/ are NOT exempt: all timing goes
  // through Stopwatch/obs.
  EXPECT_TRUE(HasCheck(Scan("bench/x.cc", now_call), "no-raw-clock"));
  EXPECT_TRUE(HasCheck(Scan("tests/x.cc", now_call), "no-raw-clock"));
  EXPECT_FALSE(HasCheck(Scan("src/util/stopwatch.h", now_call),
                        "no-raw-clock"));
  // A clock type mention without ::now (aliasing it for later use) is
  // still a raw clock acquisition.
  EXPECT_TRUE(HasCheck(
      Scan("src/a.cc", "using Clock = std::chrono::high_resolution_clock;\n"),
      "no-raw-clock"));
  EXPECT_TRUE(HasCheck(
      Scan("src/a.cc", "std::chrono::system_clock::time_point deadline;\n"),
      "no-raw-clock"));
}

TEST(NoRawClockCheckTest, DurationsAndLookalikesAreQuiet) {
  // chrono durations (sleep_for etc.) are not clock reads.
  EXPECT_FALSE(HasCheck(
      Scan("src/a.cc",
           "std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"),
      "no-raw-clock"));
  EXPECT_FALSE(HasCheck(
      Scan("src/a.cc", "int my_steady_clock_count = 0; h = now;\n"),
      "no-raw-clock"));
}

TEST(NoRawClockCheckTest, SuppressionWithReasonIsHonored) {
  const std::string snippet =
      "// wym-lint: allow(no-raw-clock): interop with external API wanting a time_point\n"
      "auto t = std::chrono::steady_clock::now();\n";
  ScanStats stats;
  EXPECT_FALSE(HasCheck(Scan("src/core/x.cc", snippet, &stats),
                        "no-raw-clock"));
  EXPECT_EQ(stats.suppressions_honored, 1u);
}

TEST(NoRandCheckTest, CommentedAndQuotedPatternsDoNotFire) {
  EXPECT_FALSE(HasCheck(
      Scan("src/a.cc", "// std::rand()\nauto s = \"rand()\";\n"), "no-rand"));
}

TEST(UnorderedIterationCheckTest, FiresOnlyInOutputWritingFiles) {
  const std::string writer =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m_;\n"
      "void Save() { for (const auto& kv : m_) { Use(kv); } }\n";
  const auto findings = Scan("src/core/x.cc", writer);
  EXPECT_TRUE(HasCheck(findings, "unordered-iteration"));
  EXPECT_EQ(LineOf(findings, "unordered-iteration"), 3);

  // Same iteration in a file with no serializer/Save marker: quiet.
  const std::string reader =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m_;\n"
      "void Emit() { for (const auto& kv : m_) { Use(kv); } }\n";
  EXPECT_FALSE(HasCheck(Scan("src/core/x.cc", reader),
                        "unordered-iteration"));
}

TEST(UnorderedIterationCheckTest, BlockingCandidateTusCountAsWriters) {
  // A blocking TU that emits CandidatePair lists promises byte-identical
  // candidate output, so hash-order iteration is flagged even without a
  // serializer marker.
  const std::string emitter =
      "#include <unordered_map>\n"
      "std::unordered_map<size_t, size_t> counts_;\n"
      "void Emit(std::vector<CandidatePair>* out) {\n"
      "  for (const auto& kv : counts_) { Use(kv); }\n"
      "}\n";
  const auto findings = Scan("src/blocking/probe.cc", emitter);
  EXPECT_TRUE(HasCheck(findings, "unordered-iteration"));
  EXPECT_EQ(LineOf(findings, "unordered-iteration"), 4);

  // The same TU outside src/blocking/ has no output marker: quiet.
  EXPECT_FALSE(HasCheck(Scan("src/core/probe.cc", emitter),
                        "unordered-iteration"));
}

TEST(UnorderedIterationCheckTest, OrderedContainerIsQuiet) {
  const std::string snippet =
      "std::map<int, int> m_;\n"
      "void Save() { for (const auto& kv : m_) { Use(kv); } }\n";
  EXPECT_FALSE(HasCheck(Scan("src/core/x.cc", snippet),
                        "unordered-iteration"));
}

TEST(NoParallelReduceCheckTest, FiresOnStdReduceAndExecution) {
  EXPECT_TRUE(HasCheck(
      Scan("src/a.cc", "double s = std::reduce(v.begin(), v.end());\n"),
      "no-parallel-reduce"));
  EXPECT_TRUE(HasCheck(
      Scan("src/a.cc", "std::sort(std::execution::par, b, e);\n"),
      "no-parallel-reduce"));
  EXPECT_FALSE(HasCheck(
      Scan("src/a.cc", "double s = std::accumulate(b, e, 0.0);\n"),
      "no-parallel-reduce"));
}

TEST(KernelBypassCheckTest, FiresOnDotLoopsInMathDirsOnly) {
  const std::string dot =
      "for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];\n";
  EXPECT_TRUE(HasCheck(Scan("src/ml/x.cc", dot),
                       "kernel-bypass-accumulation"));
  EXPECT_TRUE(HasCheck(Scan("src/la/x.cc", dot),
                       "kernel-bypass-accumulation"));
  // The int8-kernel consumers are covered too.
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", dot),
                       "kernel-bypass-accumulation"));
  EXPECT_TRUE(HasCheck(Scan("src/blocking/x.cc", dot),
                       "kernel-bypass-accumulation"));
  // Outside the covered subsystems: quiet.
  EXPECT_FALSE(HasCheck(Scan("src/obs/x.cc", dot),
                        "kernel-bypass-accumulation"));
  // The kernel TUs implement the pinned order itself.
  EXPECT_FALSE(HasCheck(Scan("src/la/kernels.cc", dot),
                        "kernel-bypass-accumulation"));
  EXPECT_FALSE(HasCheck(Scan("src/la/kernels_avx2.cc", dot),
                        "kernel-bypass-accumulation"));
}

TEST(KernelBypassCheckTest, FiresOnInt8DotLoopAndHonorsSuppression) {
  // A hand-rolled int8 dot in a consumer TU bypasses DotI8's exact
  // int32 accumulation contract just like a float loop bypasses Dot's.
  const std::string i8_dot =
      "for (size_t i = 0; i < n; ++i)\n"
      "  acc += static_cast<int32_t>(qa[i]) * static_cast<int32_t>(qb[i]);\n";
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", i8_dot),
                       "kernel-bypass-accumulation"));
  EXPECT_TRUE(HasCheck(Scan("src/blocking/x.cc", i8_dot),
                       "kernel-bypass-accumulation"));
  ScanStats stats;
  const std::string suppressed =
      "for (size_t i = 0; i < n; ++i)\n"
      "  // wym-lint: allow(kernel-bypass-accumulation): exactness proof "
      "needs the naive form\n"
      "  acc += static_cast<int32_t>(qa[i]) * static_cast<int32_t>(qb[i]);\n";
  EXPECT_FALSE(HasCheck(Scan("src/core/x.cc", suppressed, &stats),
                        "kernel-bypass-accumulation"));
  EXPECT_EQ(stats.suppressions_honored, 1u);
}

TEST(KernelBypassCheckTest, ElementwiseAccumulationIsQuiet) {
  // Indexed accumulator: each element is an independent sum, no
  // reduction order to pin.
  EXPECT_FALSE(HasCheck(
      Scan("src/ml/x.cc",
           "for (size_t i = 0; i < n; ++i) out[i] += a[i] * b[i];\n"),
      "kernel-bypass-accumulation"));
  // Scalar-times-gather with a single subscript: not a dot shape.
  EXPECT_FALSE(HasCheck(
      Scan("src/ml/x.cc",
           "for (size_t i = 0; i < n; ++i) acc += w * y[idx];\n"),
      "kernel-bypass-accumulation"));
}

// ---------------------------------------------------------------------
// Safety checks
// ---------------------------------------------------------------------

TEST(RawNewDeleteCheckTest, FiresOnNewAndDelete) {
  EXPECT_TRUE(HasCheck(Scan("src/a.cc", "int* p = new int;\n"),
                       "no-raw-new-delete"));
  EXPECT_TRUE(HasCheck(Scan("src/a.cc", "delete p;\n"),
                       "no-raw-new-delete"));
  EXPECT_TRUE(HasCheck(Scan("src/a.cc", "delete[] p;\n"),
                       "no-raw-new-delete"));
}

TEST(RawNewDeleteCheckTest, AllowsDeletedFunctionsAndPlacementNew) {
  EXPECT_FALSE(HasCheck(Scan("src/a.h",
                             "#ifndef WYM_A_H_\n#define WYM_A_H_\n"
                             "struct F { F(const F&) = delete; };\n"
                             "#endif  // WYM_A_H_\n"),
                        "no-raw-new-delete"));
  EXPECT_FALSE(HasCheck(Scan("src/a.cc", "auto* q = new (buffer) Foo();\n"),
                        "no-raw-new-delete"));
  // Identifiers containing the keywords are not the keywords.
  EXPECT_FALSE(HasCheck(Scan("src/a.cc", "int news = renew + deleted;\n"),
                        "no-raw-new-delete"));
}

TEST(MemcpyCheckTest, FiresOnNonTriviallyCopyableHints) {
  EXPECT_TRUE(HasCheck(
      Scan("src/a.cc",
           "std::memcpy(dst, src, n * sizeof(std::string));\n"),
      "memcpy-nontrivial"));
  EXPECT_FALSE(HasCheck(
      Scan("src/a.cc", "std::memcpy(dst, src, n * sizeof(float));\n"),
      "memcpy-nontrivial"));
}

TEST(HeaderGuardCheckTest, EnforcesPathDerivedGuardNames) {
  const std::string good =
      "#ifndef WYM_FOO_BAR_H_\n#define WYM_FOO_BAR_H_\n#endif\n";
  EXPECT_FALSE(HasCheck(Scan("src/foo/bar.h", good), "header-guard"));
  // The src/ prefix is dropped but tests/bench/tools prefixes are kept.
  EXPECT_TRUE(HasCheck(Scan("src/baz/bar.h", good), "header-guard"));
  EXPECT_FALSE(HasCheck(
      Scan("bench/common.h",
           "#ifndef WYM_BENCH_COMMON_H_\n#define WYM_BENCH_COMMON_H_\n"
           "#endif\n"),
      "header-guard"));
}

TEST(HeaderGuardCheckTest, FiresOnMissingGuardOrMismatchedDefine) {
  EXPECT_TRUE(HasCheck(Scan("src/foo/bar.h", "int x;\n"), "header-guard"));
  EXPECT_TRUE(HasCheck(
      Scan("src/foo/bar.h",
           "#ifndef WYM_FOO_BAR_H_\n#define WYM_OTHER_H_\n#endif\n"),
      "header-guard"));
  // Non-headers are exempt.
  EXPECT_FALSE(HasCheck(Scan("src/foo/bar.cc", "int x;\n"), "header-guard"));
}

TEST(UsingNamespaceHeaderCheckTest, HeadersOnly) {
  const std::string snippet =
      "#ifndef WYM_A_H_\n#define WYM_A_H_\n"
      "using namespace std;\n#endif\n";
  EXPECT_TRUE(
      HasCheck(Scan("src/a.h", snippet), "no-using-namespace-header"));
  EXPECT_FALSE(HasCheck(Scan("src/a.cc", "using namespace std;\n"),
                        "no-using-namespace-header"));
}

// ---------------------------------------------------------------------
// Hygiene checks
// ---------------------------------------------------------------------

TEST(SimdCheckTest, IntrinsicsConfinedToKernelTus) {
  EXPECT_TRUE(HasCheck(
      Scan("src/core/x.cc", "__m256d v = _mm256_setzero_pd();\n"),
      "simd-outside-kernels"));
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", "#include <immintrin.h>\n"),
                       "simd-outside-kernels"));
  EXPECT_FALSE(HasCheck(
      Scan("src/la/kernels_avx2.cc",
           "#include <immintrin.h>\n__m256d v = _mm256_setzero_pd();\n"),
      "simd-outside-kernels"));
}

TEST(SimdCheckTest, Int8IntrinsicsAndHeadersCoveredOutsideKernels) {
  // The int8 tier's widening/madd intrinsics carry the same _mm prefixes
  // and must stay confined to the kernel TUs like the float ones.
  EXPECT_TRUE(HasCheck(
      Scan("src/core/x.cc",
           "__m128i s = _mm_madd_epi16(_mm_srai_epi16(v, 8), w);\n"),
      "simd-outside-kernels"));
  EXPECT_TRUE(HasCheck(
      Scan("src/blocking/x.cc",
           "__m256i s = _mm256_cvtepi8_epi16(_mm_loadl_epi64(p));\n"),
      "simd-outside-kernels"));
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", "#include <nmmintrin.h>\n"),
                       "simd-outside-kernels"));
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", "#include <pmmintrin.h>\n"),
                       "simd-outside-kernels"));
  // The kernel TUs themselves stay exempt for the int8 intrinsics too.
  EXPECT_FALSE(HasCheck(
      Scan("src/la/kernels_sse2.cc",
           "__m128i s = _mm_madd_epi16(_mm_srai_epi16(v, 8), w);\n"),
      "simd-outside-kernels"));
  ScanStats stats;
  EXPECT_FALSE(HasCheck(
      Scan("src/core/x.cc",
           "// wym-lint: allow(simd-outside-kernels): doc snippet quoting "
           "the kernel\n"
           "__m128i s = _mm_madd_epi16(v, w);\n",
           &stats),
      "simd-outside-kernels"));
  EXPECT_EQ(stats.suppressions_honored, 1u);
}

TEST(NoCoutCheckTest, LibraryCodeOnly) {
  const std::string snippet = "void f() { std::cout << 1; }\n";
  EXPECT_TRUE(HasCheck(Scan("src/core/x.cc", snippet), "no-cout"));
  EXPECT_FALSE(HasCheck(Scan("tools/x.cc", snippet), "no-cout"));
  EXPECT_FALSE(HasCheck(Scan("bench/x.cc", snippet), "no-cout"));
}

TEST(TodoCheckTest, RequiresIssueReference) {
  EXPECT_TRUE(HasCheck(Scan("src/a.cc", "// TODO: make this faster\n"),
                       "todo-issue"));
  EXPECT_FALSE(HasCheck(Scan("src/a.cc", "// TODO(#42): make this faster\n"),
                        "todo-issue"));
}

TEST(UncheckedStatusTest, BareRegistryCallIsFlagged) {
  EXPECT_TRUE(HasCheck(
      Scan("src/core/x.cc", "void f() {\n  model.SaveToFile(path);\n}\n"),
      "unchecked-status"));
  EXPECT_TRUE(HasCheck(
      Scan("tools/x.cc",
           "void f() {\n  data::WriteDatasetCsv(ds, path);\n}\n"),
      "unchecked-status"));
  EXPECT_TRUE(HasCheck(
      Scan("src/a.cc",
           "void f() {\n  io::WriteFileAtomic(path, bytes);\n}\n"),
      "unchecked-status"));
}

TEST(UncheckedStatusTest, CheckedCallsAreNotFlagged) {
  const std::string snippet =
      "void f() {\n"
      "  const Status s = model.SaveToFile(path);\n"
      "  if (!data::WriteDatasetCsv(ds, path).ok()) return;\n"
      "  return io::WriteFileAtomic(path, bytes);\n"
      "  WYM_RETURN_IF_ERROR(model.SaveToFile(path));\n"
      "}\n";
  EXPECT_FALSE(HasCheck(Scan("src/core/x.cc", snippet), "unchecked-status"));
}

TEST(UncheckedStatusTest, FileLocalStatusFunctionIsDiscovered) {
  EXPECT_TRUE(HasCheck(
      Scan("src/core/x.cc",
           "Status DoThing(int n);\n"
           "void f() {\n  DoThing(3);\n}\n"),
      "unchecked-status"));
  EXPECT_TRUE(HasCheck(
      Scan("src/core/x.cc",
           "Result<int> Parse(const std::string& s);\n"
           "void f() {\n  Parse(text);\n}\n"),
      "unchecked-status"));
  // Functions with non-Status returns are not candidates.
  EXPECT_FALSE(HasCheck(
      Scan("src/core/x.cc",
           "int DoThing(int n);\n"
           "void f() {\n  DoThing(3);\n}\n"),
      "unchecked-status"));
}

TEST(UncheckedStatusTest, ContinuationLinesAreNotStatementStarts) {
  // The call begins a line but continues the assignment above it.
  EXPECT_FALSE(HasCheck(
      Scan("src/core/x.cc",
           "void f() {\n"
           "  const Status s =\n"
           "      io::WriteFileAtomic(path, bytes);\n"
           "}\n"),
      "unchecked-status"));
}

TEST(UncheckedStatusTest, DeclarationsAreNotCallSites) {
  EXPECT_FALSE(HasCheck(
      Scan("src/core/x.h",
           "class M {\n"
           "  Status SaveToFile(const std::string& path) const;\n"
           "};\n"),
      "unchecked-status"));
  EXPECT_FALSE(HasCheck(
      Scan("src/util/status.cc",
           "Status Status::Annotate(const std::string& c) const {\n"
           "  return *this;\n"
           "}\n"),
      "unchecked-status"));
}

TEST(UncheckedStatusTest, SuppressionWorks) {
  EXPECT_FALSE(HasCheck(
      Scan("src/core/x.cc",
           "void f() {\n"
           "  model.SaveToFile(path);  "
           "// wym-lint: allow(unchecked-status): best-effort cache save\n"
           "}\n"),
      "unchecked-status"));
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

TEST(SuppressionTest, SameLineMarkerSuppressesAndIsCounted) {
  ScanStats stats;
  const auto findings = Scan(
      "src/core/x.cc",
      "int f() { return std::rand(); }  "
      "// wym-lint: allow(no-rand): deliberate for this test\n",
      &stats);
  EXPECT_FALSE(HasCheck(findings, "no-rand"));
  EXPECT_FALSE(HasCheck(findings, "lint-suppression"));
  EXPECT_EQ(stats.suppressions_honored, 1);
}

TEST(SuppressionTest, PrecedingLineMarkerCoversNextLine) {
  const auto findings = Scan(
      "src/core/x.cc",
      "// wym-lint: allow(no-rand): deliberate for this test\n"
      "int f() { return std::rand(); }\n");
  EXPECT_FALSE(HasCheck(findings, "no-rand"));
  EXPECT_FALSE(HasCheck(findings, "lint-suppression"));
}

TEST(SuppressionTest, DoesNotReachPastTheNextLine) {
  const auto findings = Scan(
      "src/core/x.cc",
      "// wym-lint: allow(no-rand): too far away\n"
      "int a;\n"
      "int f() { return std::rand(); }\n");
  EXPECT_TRUE(HasCheck(findings, "no-rand"));
  // And the marker is now stale, which is itself a finding — under its
  // own check id so the drivers can map it to exit code 6.
  EXPECT_TRUE(HasCheck(findings, "stale-suppression"));
}

TEST(SuppressionTest, AnalysisCheckMarkersAreNotStaleForTheLintPass) {
  // allow(layer-order) etc. belong to `wym_lint graph` / `taint`; the
  // token pass must validate them but never do their stale accounting.
  const auto findings = Scan(
      "src/core/x.cc",
      "// wym-lint: allow(layer-order): owned by the graph pass\n"
      "// wym-lint: allow(taint-flow): owned by the taint pass\n"
      "// wym-lint: allow(include-cycle): owned by the graph pass\n"
      "int x;\n");
  EXPECT_FALSE(HasCheck(findings, "stale-suppression"));
  EXPECT_FALSE(HasCheck(findings, "lint-suppression"));
}

TEST(SuppressionTest, WrongCheckNameDoesNotSuppress) {
  const auto findings = Scan(
      "src/core/x.cc",
      "int f() { return std::rand(); }  "
      "// wym-lint: allow(no-cout): wrong check\n");
  EXPECT_TRUE(HasCheck(findings, "no-rand"));
}

TEST(SuppressionTest, UnknownCheckAndMissingReasonAreFindings) {
  EXPECT_TRUE(HasCheck(
      Scan("src/a.cc", "// wym-lint: allow(not-a-check): whatever\n"),
      "lint-suppression"));
  EXPECT_TRUE(HasCheck(
      Scan("src/core/x.cc",
           "int f() { return std::rand(); }  // wym-lint: allow(no-rand)\n"),
      "lint-suppression"));
}

TEST(SuppressionTest, MarkerInsideStringLiteralIsInert) {
  const auto findings = Scan(
      "src/a.cc", "auto s = \"// wym-lint: allow(no-rand): nope\";\n");
  EXPECT_FALSE(HasCheck(findings, "lint-suppression"));
}

// ---------------------------------------------------------------------
// API surface
// ---------------------------------------------------------------------

TEST(FormatFindingTest, MatchesTheDocumentedContract) {
  const Finding f{"src/a.cc", 7, "no-rand", "message text"};
  EXPECT_EQ(FormatFinding(f), "src/a.cc:7: [no-rand] message text");
}

TEST(CheckCatalogTest, KnownChecksAreStableAndQueryable) {
  EXPECT_TRUE(IsKnownCheck("no-rand"));
  EXPECT_TRUE(IsKnownCheck("lint-suppression"));
  EXPECT_TRUE(IsKnownCheck("stale-suppression"));
  EXPECT_FALSE(IsKnownCheck("definitely-not-a-check"));
  EXPECT_GE(AllCheckNames().size(), 12u);
}

TEST(CheckCatalogTest, AnalysisChecksRegisterButAreNotTokenChecks) {
  // The cross-TU checks validate as marker names everywhere, but their
  // use/stale accounting belongs to the graph/taint passes.
  for (const char* name : {"layer-order", "include-cycle", "taint-flow"}) {
    EXPECT_TRUE(IsKnownCheck(name)) << name;
    EXPECT_FALSE(IsTokenCheck(name)) << name;
  }
  EXPECT_TRUE(IsTokenCheck("no-rand"));
  EXPECT_TRUE(IsTokenCheck("stale-suppression"));
  EXPECT_FALSE(IsTokenCheck("definitely-not-a-check"));
}

TEST(MarkerParserTest, CollectsWellFormedMarkersAndReportsMalformed) {
  const auto lines = LexLines(
      "int a;  // wym-lint: allow(no-rand): first\n"
      "// wym-lint: allow(layer-order): second\n"
      "// wym-lint: allow(no-rand)\n"        // missing reason
      "// wym-lint: allow(nope): unknown\n"  // unknown check
      "auto s = \"// wym-lint: allow(no-rand): in a string\";\n");
  std::vector<Finding> malformed;
  const auto markers = CollectSuppressionMarkers("src/a.cc", lines,
                                                 &malformed);
  ASSERT_EQ(markers.size(), 2u);
  EXPECT_EQ(markers[0].line, 1);
  EXPECT_EQ(markers[0].check, "no-rand");
  EXPECT_EQ(markers[0].reason, "first");
  EXPECT_EQ(markers[1].line, 2);
  EXPECT_EQ(markers[1].check, "layer-order");
  ASSERT_EQ(malformed.size(), 2u);
  EXPECT_EQ(malformed[0].line, 3);
  EXPECT_EQ(malformed[1].line, 4);
}

TEST(LexHelperTest, WordAndCallMatchingRespectsIdentifierBoundaries) {
  EXPECT_TRUE(HasWord("steady_clock::now()", "steady_clock"));
  EXPECT_FALSE(HasWord("mysteady_clock", "steady_clock"));
  EXPECT_EQ(FindWord("xrand rand", "rand"), 6u);
  EXPECT_TRUE(HasCall("get_id ()", "get_id"));
  EXPECT_FALSE(HasCall("get_id;", "get_id"));
}

TEST(ScanSourceTest, FindingsAreSortedByLine) {
  const auto findings = Scan(
      "src/core/x.cc",
      "int* p = new int;\n"
      "int f() { return std::rand(); }\n"
      "void g() { std::cout << 1; }\n");
  ASSERT_GE(findings.size(), 3u);
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].line, findings[i].line);
  }
}

}  // namespace
}  // namespace wym::lint
