// wym_cli — command-line front end for the WYM library.
//
//   wym_cli generate  --dataset S-WA --out /tmp/swa.csv [--seed 42]
//                     [--scale 1.0]
//   wym_cli train-eval --data /tmp/swa.csv [--save model.wym]
//                     [--classifier LR]
//                     [--encoder siamese|finetuned|pretrained]
//                     [--scorer neural|binary|cosine] [--simplified]
//                     [--theta T --eta E --epsilon P] [--code-rule]
//   wym_cli explain   --data /tmp/swa.csv --record 5 [--json]
//                     [--model model.wym | ... same model flags]
//   wym_cli stats     --data /tmp/swa.csv [--model model.wym]
//                     # global attribution report (attribute influence +
//                     # recurring decision units) followed by a dump of
//                     # the obs metrics registry for the run
//   wym_cli profile   --data /tmp/swa.csv   # dataset quality profile
//   wym_cli verify    --model model.wym
//                     # check the file's frames/CRCs without loading it
//   wym_cli validate-report --file BENCH_micro.json
//                     # schema-check a machine-readable artifact: bench
//                     # report, WYM_TRACE trace, wym-telemetry/v1,
//                     # wym-flight-recorder/v1, or a wym-journal/v1
//                     # request journal (auto-detected by content)
//   wym_cli compare-reports <baseline.json> <current.json>
//                     [--tolerance 0.10]
//                     # compare two bench reports benchmark-by-benchmark
//                     # (name intersection); exit 4 if any current
//                     # time_ns exceeds baseline * (1 + tolerance)
//   wym_cli query     --socket /tmp/wym.sock [--op predict] [--model m]
//                     [--left 'a|b'] [--right 'a|b'] [--explain]
//                     [--deadline-ms 0] [--name n] [--path p]
//                     [--timeout-ms 5000] [--retries 3] [--json]
//                     # one request against a running wym_serve; retries
//                     # with capped exponential backoff, but only on
//                     # connect failure or ResourceExhausted shed —
//                     # application errors are answered, not retried
//   wym_cli top       --socket /tmp/wym.sock [--count 1]
//                     [--interval-ms 1000] [--timeout-ms 5000]
//                     # live windowed serving stats (qps, shed rate,
//                     # cache hit rate, p50/p95/p99) from the stats op;
//                     # repeats --count times at --interval-ms
//   wym_cli tail      --file req.jsonl [--lines 10] [--follow]
//                     [--for-ms 0]
//                     # print the last N request-journal lines;
//                     # --follow keeps polling for appended records
//                     # (--for-ms bounds how long, 0 = until SIGINT)
//   wym_cli list      # available benchmark dataset ids
//
// train-eval / explain apply the paper's 60-20-20 split internally.
//
// Exit codes: 0 success, 1 usage or other error, 2 I/O error,
// 3 corruption (failed checksum / damaged file), 4 perf regression
// (compare-reports only). Failure messages go to stderr.

#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/unit_generator.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/csv.h"
#include "data/statistics.h"
#include "data/split.h"
#include "explain/global.h"
#include "explain/report.h"
#include "ml/metrics.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "serve/protocol.h"
#include "serve/socket_io.h"

namespace {

using namespace wym;

/// Exit codes for scripted callers: distinct classes of failure map to
/// distinct codes so a wrapper can tell "bad flags" from "disk died"
/// from "model file is damaged".
enum ExitCode {
  kExitOk = 0,
  kExitUsage = 1,
  kExitIo = 2,
  kExitCorruption = 3,
  kExitRegression = 4,
};

/// Maps a non-OK Status onto the exit-code contract, message on stderr.
int StatusExit(const Status& status) {
  if (status.ok()) return kExitOk;
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  switch (status.code()) {
    case Status::Code::kCorruption:
      return kExitCorruption;
    case Status::Code::kIoError:
    // Operational (not caller-error) failures from a wym_serve query:
    // the request was valid but the service could not complete it now.
    case Status::Code::kResourceExhausted:
    case Status::Code::kDeadlineExceeded:
      return kExitIo;
    default:
      return kExitUsage;
  }
}

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(kExitUsage);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // Boolean flag.
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    return Has(key) ? std::strtod(Get(key).c_str(), nullptr) : fallback;
  }

  uint64_t GetSeed() const {
    return static_cast<uint64_t>(
        std::strtoull(Get("seed", "42").c_str(), nullptr, 10));
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: wym_cli <generate|train-eval|explain|stats|profile|"
               "verify|validate-report|compare-reports|query|top|tail|list>"
               " [flags]\n"
               "see the header of tools/wym_cli.cc for the flag list\n");
  return kExitUsage;
}

core::WymConfig ConfigFromArgs(const Args& args) {
  core::WymConfig config;
  const std::string encoder = args.Get("encoder", "siamese");
  if (encoder == "pretrained") {
    config.encoder.mode = embedding::EncoderMode::kPretrained;
  } else if (encoder == "finetuned") {
    config.encoder.mode = embedding::EncoderMode::kFineTuned;
  } else if (encoder == "siamese") {
    config.encoder.mode = embedding::EncoderMode::kSiamese;
  } else if (encoder == "jaro-winkler") {
    config.generator.similarity = core::PairingSimilarity::kJaroWinkler;
  } else {
    std::fprintf(stderr, "unknown --encoder %s\n", encoder.c_str());
    std::exit(kExitUsage);
  }
  const std::string scorer = args.Get("scorer", "neural");
  if (scorer == "binary") {
    config.scorer.kind = core::ScorerKind::kBinary;
  } else if (scorer == "cosine") {
    config.scorer.kind = core::ScorerKind::kCosine;
  } else if (scorer != "neural") {
    std::fprintf(stderr, "unknown --scorer %s\n", scorer.c_str());
    std::exit(kExitUsage);
  }
  config.simplified_features = args.Has("simplified");
  config.classifier = args.Get("classifier", "");
  config.generator.theta = args.GetDouble("theta", config.generator.theta);
  config.generator.eta = args.GetDouble("eta", config.generator.eta);
  config.generator.epsilon =
      args.GetDouble("epsilon", config.generator.epsilon);
  if (args.Has("code-rule")) {
    config.generator.rules.push_back(core::EqualProductCodeRule());
  }
  return config;
}

data::Dataset LoadData(const Args& args) {
  const std::string path = args.Get("data");
  if (path.empty()) {
    std::fprintf(stderr, "--data <csv> is required\n");
    std::exit(kExitUsage);
  }
  auto result = data::ReadDatasetCsv(path, path);
  if (!result.ok()) {
    std::exit(StatusExit(result.status().Annotate("cannot load " + path)));
  }
  return std::move(result).value();
}

int CmdList() {
  std::printf("%-6s %-28s %-11s %9s %7s\n", "id", "name", "type",
              "paper_sz", "match%");
  for (const auto& spec : data::BenchmarkSpecs()) {
    std::printf("%-6s %-28s %-11s %9zu %7.2f\n", spec.id.c_str(),
                spec.full_name.c_str(), data::DatasetTypeName(spec.type),
                spec.paper_size, spec.paper_match_percent);
  }
  return 0;
}

int CmdGenerate(const Args& args) {
  const std::string id = args.Get("dataset");
  const data::DatasetSpec* spec = data::FindSpec(id);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown --dataset '%s' (try: wym_cli list)\n",
                 id.c_str());
    return kExitUsage;
  }
  const std::string out = args.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "--out <csv> is required\n");
    return kExitUsage;
  }
  const data::Dataset dataset = data::GenerateDataset(
      *spec, args.GetSeed(), args.GetDouble("scale", 1.0));
  const Status status = data::WriteDatasetCsv(dataset, out);
  if (!status.ok()) return StatusExit(status);
  std::printf("wrote %s: %zu records (%.1f%% match)\n", out.c_str(),
              dataset.size(), dataset.MatchPercent());
  return 0;
}

int CmdTrainEval(const Args& args) {
  const data::Dataset dataset = LoadData(args);
  const data::Split split = data::DefaultSplit(dataset, args.GetSeed());
  core::WymModel model(ConfigFromArgs(args));
  model.Fit(split.train, split.validation);

  const std::vector<int> predicted = model.PredictDataset(split.test);
  const auto confusion = ml::Confuse(split.test.Labels(), predicted);
  std::printf("records: %zu train / %zu val / %zu test\n",
              split.train.size(), split.validation.size(),
              split.test.size());
  std::printf("classifier: %s (validation F1 %.3f, threshold %.3f)\n",
              model.matcher().best_name().c_str(),
              model.matcher().best_validation_f1(),
              model.matcher().best_threshold());
  std::printf("test precision %.3f  recall %.3f  F1 %.3f\n",
              ml::Precision(confusion), ml::Recall(confusion),
              ml::F1(confusion));
  if (args.Has("save")) {
    const std::string out = args.Get("save");
    const Status status = model.SaveToFile(out);
    if (!status.ok()) return StatusExit(status);
    std::printf("model saved to %s\n", out.c_str());
  }
  return 0;
}

int CmdExplain(const Args& args) {
  const data::Dataset dataset = LoadData(args);
  const size_t record_index = static_cast<size_t>(
      std::strtoull(args.Get("record", "0").c_str(), nullptr, 10));
  if (record_index >= dataset.size()) {
    std::fprintf(stderr, "--record %zu out of range (%zu records)\n",
                 record_index, dataset.size());
    return kExitUsage;
  }
  core::WymModel model(ConfigFromArgs(args));
  if (args.Has("model")) {
    auto loaded = core::WymModel::LoadFromFile(args.Get("model"));
    if (!loaded.ok()) {
      return StatusExit(loaded.status().Annotate("cannot load model"));
    }
    model = std::move(loaded).value();
  } else {
    const data::Split split = data::DefaultSplit(dataset, args.GetSeed());
    model.Fit(split.train, split.validation);
  }

  const data::EmRecord& record = dataset.records[record_index];
  for (size_t a = 0; a < dataset.schema.size(); ++a) {
    std::printf("%-12s | %-34s | %s\n",
                dataset.schema.attributes[a].c_str(),
                record.left.values[a].c_str(),
                record.right.values[a].c_str());
  }
  std::printf("label: %d\n\n", record.label);

  const core::Explanation explanation = model.Explain(record);
  if (args.Has("json")) {
    std::printf("%s\n", explain::ExplanationToJson(explanation).c_str());
  } else {
    std::printf("%s", explain::RenderExplanation(explanation).c_str());
  }
  return 0;
}

/// `verify`: audit a model file's frames and checksums without loading
/// (or even deserializing) any model state. Exit 0 = intact, 3 = the
/// file is damaged, 2 = it cannot be read.
int CmdVerify(const Args& args) {
  const std::string path = args.Get("model");
  if (path.empty()) {
    std::fprintf(stderr, "--model <file> is required\n");
    return kExitUsage;
  }
  std::string summary;
  const Status status = core::WymModel::VerifyFile(path, &summary);
  if (!status.ok()) return StatusExit(status);
  std::printf("%s: verified\n%s", path.c_str(), summary.c_str());
  return kExitOk;
}

/// `validate-report`: schema-check a machine-readable artifact. The
/// kind is auto-detected by content: trace files by their
/// "traceEvents" array, telemetry / flight-recorder / journal files by
/// their schema tags, everything else validates as a bench report.
/// Exit 0 = valid, 3 = structurally invalid, 2 = unreadable — the same
/// contract for every kind.
int CmdValidateReport(const Args& args) {
  const std::string path = args.Get("file");
  if (path.empty()) {
    std::fprintf(stderr, "--file <json> is required\n");
    return kExitUsage;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return kExitIo;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const char* kind = "bench report (wym-bench-report/v1)";
  std::string error;
  bool valid = false;
  if (text.find("\"traceEvents\"") != std::string::npos) {
    kind = "trace (trace_event JSON)";
    valid = obs::ValidateTraceJson(text, &error);
  } else if (text.find("\"wym-telemetry/v1\"") != std::string::npos) {
    kind = "telemetry (wym-telemetry/v1)";
    valid = obs::ValidateTelemetryJson(text, &error);
  } else if (text.find("\"wym-flight-recorder/v1\"") != std::string::npos) {
    kind = "flight-recorder dump (wym-flight-recorder/v1)";
    valid = obs::ValidateFlightRecorderJson(text, &error);
  } else if (text.substr(0, text.find('\n'))
                 .find("\"schema\":\"wym-journal/v1\"") != std::string::npos) {
    kind = "request journal (wym-journal/v1)";
    valid = obs::ValidateJournalJson(text, &error);
  } else {
    valid = obs::ValidateBenchReportJson(text, &error);
  }
  if (!valid) {
    std::fprintf(stderr, "%s: invalid %s: %s\n", path.c_str(), kind,
                 error.c_str());
    return kExitCorruption;
  }
  std::printf("%s: valid %s\n", path.c_str(), kind);
  return kExitOk;
}

/// Reads + schema-checks one bench report and extracts its
/// {benchmark name -> time_ns} map. Returns kExitOk or the exit code to
/// propagate.
int LoadBenchTimes(const std::string& path,
                   std::map<std::string, double>* times) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return kExitIo;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string error;
  if (!obs::ValidateBenchReportJson(text, &error)) {
    std::fprintf(stderr, "%s: invalid bench report: %s\n", path.c_str(),
                 error.c_str());
    return kExitCorruption;
  }
  obs::JsonValue root;
  if (!obs::ParseJson(text, &root, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return kExitCorruption;
  }
  const obs::JsonValue* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->IsArray()) {
    std::fprintf(stderr, "%s: no benchmarks array\n", path.c_str());
    return kExitCorruption;
  }
  for (const obs::JsonValue& entry : benchmarks->array) {
    const obs::JsonValue* name = entry.Find("name");
    const obs::JsonValue* time_ns = entry.Find("time_ns");
    if (name == nullptr || time_ns == nullptr || !time_ns->IsNumber()) {
      continue;  // ValidateBenchReportJson already vouched for the shape.
    }
    (*times)[name->string] = time_ns->number;
  }
  return kExitOk;
}

/// `compare-reports`: benchmark-by-benchmark perf gate between two
/// wym-bench-report/v1 files. Only the intersection of benchmark names
/// is compared — the current report is typically a filtered subset of
/// the seeded baseline — and any benchmark whose current time exceeds
/// baseline * (1 + tolerance) is a regression (exit 4). Improvements
/// and new/missing benchmarks are reported but never fail the gate.
int CmdCompareReports(int argc, char** argv) {
  std::vector<std::string> files;
  double tolerance = 0.10;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--tolerance needs a value\n");
        return kExitUsage;
      }
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return kExitUsage;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2 || tolerance < 0.0) {
    std::fprintf(stderr,
                 "usage: wym_cli compare-reports <baseline.json> "
                 "<current.json> [--tolerance 0.10]\n");
    return kExitUsage;
  }

  std::map<std::string, double> baseline, current;
  if (const int code = LoadBenchTimes(files[0], &baseline)) return code;
  if (const int code = LoadBenchTimes(files[1], &current)) return code;

  size_t compared = 0, regressions = 0;
  for (const auto& [name, current_ns] : current) {
    const auto it = baseline.find(name);
    if (it == baseline.end()) {
      std::printf("  new       %-40s %12.1f ns\n", name.c_str(), current_ns);
      continue;
    }
    ++compared;
    const double baseline_ns = it->second;
    const double ratio =
        baseline_ns > 0.0 ? current_ns / baseline_ns
                          : (current_ns > 0.0 ? std::numeric_limits<double>::infinity() : 1.0);
    const bool regressed = current_ns > baseline_ns * (1.0 + tolerance);
    if (regressed) ++regressions;
    std::printf("  %-9s %-40s %12.1f -> %12.1f ns  (%+.1f%%)\n",
                regressed ? "REGRESSED" : "ok", name.c_str(), baseline_ns,
                current_ns, (ratio - 1.0) * 100.0);
  }
  if (compared == 0) {
    std::fprintf(stderr,
                 "no common benchmarks between %s and %s — nothing gated\n",
                 files[0].c_str(), files[1].c_str());
    return kExitUsage;
  }
  std::printf("compared %zu benchmark(s), tolerance %.0f%%: %zu regression(s)\n",
              compared, tolerance * 100.0, regressions);
  return regressions == 0 ? kExitOk : kExitRegression;
}

/// Splits a '|'-separated attribute list ("iphone 4s|black") into
/// entity values. A lone empty string still yields one empty value, so
/// `--left '|'` is two empty attributes, not zero.
std::vector<std::string> SplitValues(const std::string& text) {
  std::vector<std::string> values;
  size_t start = 0;
  while (true) {
    const size_t bar = text.find('|', start);
    if (bar == std::string::npos) {
      values.push_back(text.substr(start));
      return values;
    }
    values.push_back(text.substr(start, bar - start));
    start = bar + 1;
  }
}

/// Lint-safe millisecond sleep for the retry backoff (no chrono clocks).
void SleepMs(int ms) { ::poll(nullptr, 0, ms); }

/// One attempt against the server: connect, send, await the response
/// line within `timeout_ms`. Outcomes the caller tells apart:
///  - Ok + response filled: the server answered (the answer itself may
///    carry an application error);
///  - IoError: connect failure / timeout / torn connection.
Status QueryOnce(const std::string& socket_path,
                 const serve::Request& request, int timeout_ms,
                 serve::Response* response) {
  Result<int> fd = serve::ConnectUnix(socket_path);
  WYM_RETURN_IF_ERROR(fd.status());
  serve::LineChannel channel(fd.value());
  WYM_RETURN_IF_ERROR(channel.WriteLine(serve::RenderRequest(request)));
  std::string line;
  bool eof = false;
  bool timed_out = false;
  WYM_RETURN_IF_ERROR(channel.ReadLine(&line, timeout_ms, &eof, &timed_out));
  if (eof) return Status::IoError("server closed connection unanswered");
  if (timed_out) {
    return Status::IoError("no response within " +
                           std::to_string(timeout_ms) + "ms");
  }
  Result<serve::Response> parsed = serve::ParseResponse(line);
  WYM_RETURN_IF_ERROR(parsed.status().Annotate("malformed response"));
  *response = std::move(parsed).value();
  return Status::Ok();
}

/// `query`: one request against a running wym_serve, with bounded
/// retries. Retry policy is deliberately narrow: only connect failures
/// and ResourceExhausted sheds are retried (both mean "the server never
/// did the work"); every other answer — including DeadlineExceeded and
/// Corruption — is an application outcome, reported once. Backoff is
/// capped exponential and deterministic (no jitter source in this
/// codebase by design).
int CmdQuery(const Args& args) {
  const std::string socket_path = args.Get("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket <path> is required\n");
    return kExitUsage;
  }

  serve::Request request;
  const std::string op = args.Get("op", "predict");
  if (op == "ping") {
    request.op = serve::Request::Op::kPing;
  } else if (op == "predict") {
    request.op = serve::Request::Op::kPredict;
  } else if (op == "stats") {
    request.op = serve::Request::Op::kStats;
  } else if (op == "list_models") {
    request.op = serve::Request::Op::kListModels;
  } else if (op == "load_model") {
    request.op = serve::Request::Op::kLoadModel;
  } else if (op == "retire_model") {
    request.op = serve::Request::Op::kRetireModel;
  } else if (op == "shutdown") {
    request.op = serve::Request::Op::kShutdown;
  } else if (op == "debug_sleep") {
    request.op = serve::Request::Op::kDebugSleep;
  } else {
    std::fprintf(stderr, "unknown --op '%s'\n", op.c_str());
    return kExitUsage;
  }
  request.id = args.Get("id", "cli");
  request.model = args.Get("model");
  request.explain = args.Has("explain");
  request.deadline_ms = static_cast<uint64_t>(
      std::strtoull(args.Get("deadline-ms", "0").c_str(), nullptr, 10));
  request.name = args.Get("name");
  request.path = args.Get("path");
  request.sleep_ms = static_cast<uint64_t>(
      std::strtoull(args.Get("sleep-ms", "0").c_str(), nullptr, 10));
  if (request.op == serve::Request::Op::kPredict) {
    if (!args.Has("left") || !args.Has("right")) {
      std::fprintf(stderr, "predict needs --left 'a|b' and --right 'a|b'\n");
      return kExitUsage;
    }
    data::EmRecord pair;
    pair.left.values = SplitValues(args.Get("left"));
    pair.right.values = SplitValues(args.Get("right"));
    request.pairs.push_back(std::move(pair));
  }

  const int timeout_ms = static_cast<int>(
      std::strtoul(args.Get("timeout-ms", "5000").c_str(), nullptr, 10));
  const int retries = static_cast<int>(
      std::strtoul(args.Get("retries", "3").c_str(), nullptr, 10));

  serve::Response response;
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      // 100ms, 200ms, 400ms, ... capped at 2s.
      int backoff_ms = 100;
      for (int i = 1; i < attempt && backoff_ms < 2000; ++i) backoff_ms *= 2;
      SleepMs(backoff_ms < 2000 ? backoff_ms : 2000);
    }
    last = QueryOnce(socket_path, request, timeout_ms, &response);
    if (!last.ok()) continue;  // Connect failure / timeout: retryable.
    if (response.status.code() == Status::Code::kResourceExhausted) {
      last = response.status;  // Shed: the server never did the work.
      continue;
    }
    break;  // Answered (success or application error): report it.
  }
  if (!last.ok() &&
      (last.code() == Status::Code::kIoError ||
       last.code() == Status::Code::kResourceExhausted)) {
    std::fprintf(stderr, "query failed after %d attempt(s): %s\n",
                 retries + 1, last.ToString().c_str());
    return kExitIo;
  }

  if (args.Has("json")) {
    std::printf("%s\n", serve::RenderResponse(response).c_str());
  } else if (!response.status.ok()) {
    std::fprintf(stderr, "%s\n", response.status.ToString().c_str());
  } else if (request.op == serve::Request::Op::kPredict) {
    for (const serve::PairResult& result : response.results) {
      std::printf("prediction %d  probability %.6f%s\n", result.prediction,
                  result.probability, result.cached ? "  (cached)" : "");
      if (!result.explanation_json.empty()) {
        std::printf("%s\n", result.explanation_json.c_str());
      }
    }
  } else if (!response.payload_json.empty()) {
    std::printf("%s\n", response.payload_json.c_str());
  } else {
    std::printf("ok\n");
  }
  return StatusExit(response.status);
}

/// Numeric field lookup in a parsed stats/window object; absent or
/// non-numeric members read as `fallback` so `top` degrades instead of
/// crashing when pointed at an older server.
double NumberField(const obs::JsonValue& object, const char* key,
                   double fallback) {
  const obs::JsonValue* value = object.Find(key);
  return (value != nullptr && value->IsNumber()) ? value->number : fallback;
}

/// `top`: human-oriented live view of a running wym_serve, built
/// entirely on the public stats op — one line of queue/cache state plus
/// one line per telemetry window. Repeats --count times so an operator
/// can watch a deploy settle without a watch(1) wrapper.
int CmdTop(const Args& args) {
  const std::string socket_path = args.Get("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket <path> is required\n");
    return kExitUsage;
  }
  const int count = static_cast<int>(
      std::strtoul(args.Get("count", "1").c_str(), nullptr, 10));
  const int interval_ms = static_cast<int>(
      std::strtoul(args.Get("interval-ms", "1000").c_str(), nullptr, 10));
  const int timeout_ms = static_cast<int>(
      std::strtoul(args.Get("timeout-ms", "5000").c_str(), nullptr, 10));

  serve::Request request;
  request.op = serve::Request::Op::kStats;
  request.id = args.Get("id", "top");

  for (int i = 0; i < count; ++i) {
    if (i > 0) SleepMs(interval_ms);
    serve::Response response;
    const Status queried =
        QueryOnce(socket_path, request, timeout_ms, &response);
    if (!queried.ok()) {
      std::fprintf(stderr, "top: %s\n", queried.ToString().c_str());
      return kExitIo;
    }
    if (!response.status.ok()) return StatusExit(response.status);

    obs::JsonValue stats;
    std::string error;
    if (!obs::ParseJson(response.payload_json, &stats, &error)) {
      std::fprintf(stderr, "top: malformed stats payload: %s\n",
                   error.c_str());
      return kExitCorruption;
    }
    const obs::JsonValue* draining = stats.Find("draining");
    std::printf("queue %zu/%zu  in_flight %zu  cache %zu/%zu%s\n",
                static_cast<size_t>(NumberField(stats, "queue_depth", 0)),
                static_cast<size_t>(NumberField(stats, "queue_bound", 0)),
                static_cast<size_t>(NumberField(stats, "in_flight", 0)),
                static_cast<size_t>(
                    stats.Find("cache") != nullptr
                        ? NumberField(*stats.Find("cache"), "entries", 0)
                        : 0),
                static_cast<size_t>(
                    stats.Find("cache") != nullptr
                        ? NumberField(*stats.Find("cache"), "capacity", 0)
                        : 0),
                (draining != nullptr && draining->IsBool() &&
                 draining->boolean)
                    ? "  DRAINING"
                    : "");
    const obs::JsonValue* windows = stats.Find("windows");
    if (windows == nullptr || !windows->IsObject()) {
      std::printf("  (no windows: server running without telemetry)\n");
    } else {
      for (const auto& [label, window] : windows->object) {
        if (!window.IsObject()) continue;
        std::printf(
            "  %-4s qps %8.3f  shed %5.1f%%  cache-hit %5.1f%%  "
            "p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
            label.c_str(), NumberField(window, "qps", 0.0),
            NumberField(window, "shed_rate", 0.0) * 100.0,
            NumberField(window, "cache_hit_rate", 0.0) * 100.0,
            NumberField(window, "p50_ns", 0.0) / 1e6,
            NumberField(window, "p95_ns", 0.0) / 1e6,
            NumberField(window, "p99_ns", 0.0) / 1e6);
      }
    }
    std::fflush(stdout);
  }
  return kExitOk;
}

/// `tail`: print the last N lines of a request journal, optionally
/// following appends. The follow loop re-reads from a byte offset and
/// only emits complete (newline-terminated) lines, so a record being
/// written mid-poll is never shown torn; a file that shrank (rotation)
/// resets the offset and replays from the new head.
int CmdTail(const Args& args) {
  const std::string path = args.Get("file");
  if (path.empty()) {
    std::fprintf(stderr, "--file <journal> is required\n");
    return kExitUsage;
  }
  const size_t want = static_cast<size_t>(
      std::strtoull(args.Get("lines", "10").c_str(), nullptr, 10));

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return kExitIo;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  std::vector<std::string> lines;
  size_t offset = 0;
  while (offset < text.size()) {
    const size_t newline = text.find('\n', offset);
    if (newline == std::string::npos) break;  // Incomplete final record.
    lines.push_back(text.substr(offset, newline - offset));
    offset = newline + 1;
  }
  for (size_t i = lines.size() > want ? lines.size() - want : 0;
       i < lines.size(); ++i) {
    std::printf("%s\n", lines[i].c_str());
  }
  std::fflush(stdout);
  if (!args.Has("follow")) return kExitOk;

  const uint64_t for_ms = static_cast<uint64_t>(
      std::strtoull(args.Get("for-ms", "0").c_str(), nullptr, 10));
  uint64_t waited_ms = 0;
  while (for_ms == 0 || waited_ms < for_ms) {
    SleepMs(200);
    waited_ms += 200;
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // Brief absence during rotation: retry.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string current = buffer.str();
    if (current.size() < offset) offset = 0;  // Rotated under us.
    size_t position = offset;
    while (position < current.size()) {
      const size_t newline = current.find('\n', position);
      if (newline == std::string::npos) break;
      std::printf("%.*s\n", static_cast<int>(newline - position),
                  current.c_str() + position);
      position = newline + 1;
    }
    if (position != offset) std::fflush(stdout);
    offset = position;
  }
  return kExitOk;
}

}  // namespace

int CmdProfile(const Args& args) {
  const data::Dataset dataset = LoadData(args);
  std::printf("%s", data::RenderProfile(data::ProfileDataset(dataset)).c_str());
  return 0;
}

int CmdStats(const Args& args) {
  const data::Dataset dataset = LoadData(args);
  const data::Split split = data::DefaultSplit(dataset, args.GetSeed());
  core::WymModel model(ConfigFromArgs(args));
  if (args.Has("model")) {
    auto loaded = core::WymModel::LoadFromFile(args.Get("model"));
    if (!loaded.ok()) {
      return StatusExit(loaded.status().Annotate("cannot load model"));
    }
    model = std::move(loaded).value();
  } else {
    model.Fit(split.train, split.validation);
  }
  const explain::GlobalAttribution report =
      explain::ComputeGlobalAttribution(model, split.test);
  std::printf("%s", explain::RenderGlobalAttribution(report,
                                                     dataset.schema).c_str());
  // Pipeline metrics accumulated during this run (fit + attribution):
  // counters, gauges and latency histograms from the obs registry.
  std::printf("\n%s",
              obs::RenderMetrics(obs::Registry::Global().Snapshot()).c_str());
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  // compare-reports takes positional file arguments, which the shared
  // --key/value parser rejects; dispatch it before constructing Args.
  if (command == "compare-reports") return CmdCompareReports(argc, argv);
  const Args args(argc, argv);
  if (command == "list") return CmdList();
  if (command == "generate") return CmdGenerate(args);
  if (command == "train-eval") return CmdTrainEval(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "stats") return CmdStats(args);
  if (command == "profile") return CmdProfile(args);
  if (command == "verify") return CmdVerify(args);
  if (command == "validate-report") return CmdValidateReport(args);
  if (command == "query") return CmdQuery(args);
  if (command == "top") return CmdTop(args);
  if (command == "tail") return CmdTail(args);
  return Usage();
}
