// wym_serve — long-lived matcher service over a Unix-domain socket.
//
//   wym_serve --socket /tmp/wym.sock --model default=/path/model.wym
//             [--model name=path]        # one extra named model
//             [--models models.conf]     # name=path lines, all must load
//             [--queue-bound 64]         # admission bound (shed beyond)
//             [--deadline-ms 0]          # default per-request budget
//             [--watchdog-ms 30000]      # wedge timeout (0 disables)
//             [--watchdog-interval-ms 1000]  # watchdog scan cadence
//             [--cache 4096]             # prediction cache entries
//             [--stats-out stats.json]   # final snapshot on shutdown
//             [--journal req.jsonl]      # request journal (JSONL)
//             [--journal-max-kb 65536]   # journal rotation bound
//             [--recorder 256]           # flight-recorder ring size
//             [--recorder-out post.json] # postmortem dump path
//             [--telemetry-out tele.json]  # windowed stats artifact
//             [--telemetry-period 1]       # export period, seconds
//             [--enable-debug-ops]       # test-only debug_sleep op
//
// Speaks the JSON-lines protocol of src/serve/protocol.h. Models load
// through v2 frame verification: a corrupt file is rejected at startup
// (exit 3) or, when hot-loaded over the socket, answered with a typed
// Corruption error while the previous model keeps serving.
//
// Telemetry (see DESIGN.md "Telemetry"): --journal appends one
// wym-journal/v1 line per answered request; --recorder keeps the last
// N request records in a ring and dumps a wym-flight-recorder/v1
// postmortem to --recorder-out on watchdog fire, SIGQUIT, and drain;
// --telemetry-out rewrites a wym-telemetry/v1 windowed-stats artifact
// every --telemetry-period seconds (windows also appear in the stats
// op whenever --telemetry-out or --journal is given).
//
// SIGTERM/SIGINT begin a graceful drain: stop accepting, shed new work
// with ResourceExhausted, finish or deadline-out everything in flight,
// then flush a final stats snapshot (stdout, plus --stats-out when
// given) and exit 0. SIGQUIT dumps the flight recorder without
// stopping. Worker threads come from the global pool (WYM_THREADS).
//
// Exit codes match wym_cli: 0 clean shutdown, 1 usage, 2 I/O error,
// 3 corrupt model file.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "obs/event_log.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/io.h"

namespace {

using namespace wym;

enum ExitCode {
  kExitOk = 0,
  kExitUsage = 1,
  kExitIo = 2,
  kExitCorruption = 3,
};

int StatusExit(const Status& status) {
  if (status.ok()) return kExitOk;
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  switch (status.code()) {
    case Status::Code::kCorruption:
      return kExitCorruption;
    case Status::Code::kIoError:
      return kExitIo;
    default:
      return kExitUsage;
  }
}

/// Same --key value / --flag grammar as wym_cli, minus the subcommand
/// slot (wym_serve has exactly one job).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(kExitUsage);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // Boolean flag.
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    return Has(key) ? std::strtoull(Get(key).c_str(), nullptr, 10)
                    : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }
void HandleDumpSignal(int) { g_dump_requested = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: wym_serve --socket <path> "
               "(--model name=path | --models <conf>) [flags]\n"
               "see the header of tools/wym_serve.cc for the flag list\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string socket_path = args.Get("socket");
  if (socket_path.empty()) return Usage();

  serve::ModelRegistry registry;
  if (args.Has("models")) {
    const Status status = registry.LoadConfigFile(args.Get("models"));
    if (!status.ok()) return StatusExit(status);
  }
  if (args.Has("model")) {
    const std::string spec = args.Get("model");
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::fprintf(stderr, "--model expects name=path, got '%s'\n",
                   spec.c_str());
      return kExitUsage;
    }
    const Status status =
        registry.LoadModel(spec.substr(0, eq), spec.substr(eq + 1));
    if (!status.ok()) return StatusExit(status);
  }
  if (registry.size() == 0) {
    std::fprintf(stderr,
                 "no models: pass --model name=path or --models <conf>\n");
    return kExitUsage;
  }

  // Telemetry sinks: each exists only when its flag is given, and the
  // service takes plain pointers — off means a null check and nothing
  // else on the serve path.
  std::unique_ptr<obs::EventLog> journal;
  if (args.Has("journal")) {
    obs::EventLog::Options journal_options;
    journal_options.path = args.Get("journal");
    journal_options.max_bytes = args.GetUint("journal-max-kb", 65536) * 1024;
    journal = std::make_unique<obs::EventLog>(journal_options);
    std::string error;
    if (!journal->Open(&error)) {
      std::fprintf(stderr, "--journal: %s\n", error.c_str());
      return kExitIo;
    }
  }
  std::unique_ptr<obs::FlightRecorder> recorder;
  const std::string recorder_out =
      args.Get("recorder-out", socket_path + ".postmortem.json");
  if (args.Has("recorder") || args.Has("recorder-out")) {
    recorder = std::make_unique<obs::FlightRecorder>(
        static_cast<size_t>(args.GetUint("recorder", 256)));
  }
  // Windowed stats come along whenever any telemetry is on: the stats
  // op's "windows" section and the --telemetry-out artifact share one
  // tracker.
  std::unique_ptr<obs::WindowTracker> windows;
  const bool telemetry_export = args.Has("telemetry-out");
  if (telemetry_export || journal != nullptr || recorder != nullptr) {
    windows = std::make_unique<obs::WindowTracker>();
  }

  serve::ServiceOptions service_options;
  service_options.queue_bound =
      static_cast<size_t>(args.GetUint("queue-bound", 64));
  service_options.default_deadline_ms = args.GetUint("deadline-ms", 0);
  service_options.wedge_timeout_ms = args.GetUint("watchdog-ms", 30000);
  service_options.cache_entries =
      static_cast<size_t>(args.GetUint("cache", 4096));
  service_options.enable_debug_ops = args.Has("enable-debug-ops");
  service_options.journal = journal.get();
  service_options.recorder = recorder.get();
  service_options.windows = windows.get();
  serve::MatcherService service(&registry, service_options);

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGQUIT, HandleDumpSignal);

  serve::ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.stop_requested = [] { return g_stop_requested != 0; };
  server_options.watchdog_interval_ms =
      args.GetUint("watchdog-interval-ms", 1000);
  if (recorder != nullptr) {
    server_options.on_watchdog_recover =
        [&recorder, &recorder_out](size_t recovered) {
          (void)recovered;
          std::string error;
          if (!recorder->DumpToFile(recorder_out, "watchdog", &error)) {
            std::fprintf(stderr, "flight-recorder dump: %s\n", error.c_str());
          }
        };
  }
  const std::string telemetry_out = args.Get("telemetry-out");
  const uint64_t telemetry_period_ns =
      args.GetUint("telemetry-period", 1) * 1000000000ull;
  uint64_t last_tick_ns = 0;
  uint64_t last_export_ns = 0;
  server_options.on_tick = [&] {
    const uint64_t now_ns = obs::NowNanos();
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      if (recorder != nullptr) {
        std::string error;
        if (!recorder->DumpToFile(recorder_out, "sigquit", &error)) {
          std::fprintf(stderr, "flight-recorder dump: %s\n", error.c_str());
        }
      }
    }
    if (windows == nullptr) return;
    // Sample about once a second: fine enough for 10s windows, cheap
    // enough (one registry snapshot) to never matter on the accept
    // loop.
    if (now_ns - last_tick_ns >= 1000000000ull) {
      last_tick_ns = now_ns;
      windows->Tick(now_ns);
    }
    if (telemetry_export && now_ns - last_export_ns >= telemetry_period_ns) {
      last_export_ns = now_ns;
      const Status written =
          io::WriteFileAtomic(telemetry_out, windows->TelemetryJson());
      if (!written.ok()) {
        std::fprintf(stderr, "--telemetry-out: %s\n",
                     written.ToString().c_str());
      }
    }
  };
  serve::SocketServer server(&service, server_options);

  std::printf("wym_serve listening on %s (%zu model(s), queue bound %zu)\n",
              socket_path.c_str(), registry.size(),
              service_options.queue_bound);
  std::fflush(stdout);

  const Status served = server.Serve();
  if (!served.ok()) return StatusExit(served.Annotate("serve"));

  // Drain-time telemetry flush: one last window sample + export, and a
  // "drain" postmortem so every shutdown leaves a diagnosable trail.
  if (windows != nullptr) {
    windows->Tick(obs::NowNanos());
    if (telemetry_export) {
      const Status written =
          io::WriteFileAtomic(telemetry_out, windows->TelemetryJson());
      if (!written.ok()) return StatusExit(written.Annotate("--telemetry-out"));
    }
  }
  if (recorder != nullptr) {
    std::string error;
    if (!recorder->DumpToFile(recorder_out, "drain", &error)) {
      std::fprintf(stderr, "flight-recorder dump: %s\n", error.c_str());
      return kExitIo;
    }
  }
  if (journal != nullptr) journal->Close();

  // Final stats snapshot: the drain's last word, so an operator (or the
  // smoke test) can see what the process did before it went away.
  const std::string stats = service.StatsJson();
  std::printf("%s\n", stats.c_str());
  if (args.Has("stats-out")) {
    const Status written = io::WriteFileAtomic(args.Get("stats-out"), stats);
    if (!written.ok()) return StatusExit(written.Annotate("--stats-out"));
  }
  return kExitOk;
}
