// wym_lint: the project's static analyzer (see DESIGN.md "Correctness
// tooling").
//
//   wym_lint <repo-root>          scan src/ tools/ tests/ bench/ under root
//   wym_lint --files <f> [f...]   scan explicit files (paths kept verbatim)
//   wym_lint --list-checks        print the check catalog
//
// Prints one `file:line: [check-name] message` per unsuppressed finding
// and exits nonzero when any exist. ctest runs this over the full tree,
// so a banned pattern fails the build gate, not a code review.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/source_scan.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Forward-slashed path of `path` relative to `root` (or verbatim when it
// is not under root). Check scoping keys off this.
std::string RelativePath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  return (ec || rel.empty()) ? path.generic_string() : rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  if (!args.empty() && args[0] == "--list-checks") {
    for (const std::string& name : wym::lint::AllCheckNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  fs::path root = fs::current_path();
  std::vector<fs::path> files;
  if (!args.empty() && args[0] == "--files") {
    for (size_t i = 1; i < args.size(); ++i) files.emplace_back(args[i]);
  } else {
    if (!args.empty()) root = args[0];
    if (!fs::is_directory(root)) {
      std::cerr << "wym-lint: not a directory: " << root << "\n";
      return 2;
    }
    for (const char* dir : {"src", "tools", "tests", "bench"}) {
      const fs::path sub = root / dir;
      if (!fs::is_directory(sub)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(sub)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  }
  // Directory iteration order is filesystem-dependent; the lint output
  // itself must be deterministic.
  std::sort(files.begin(), files.end());

  int finding_count = 0;
  int file_count = 0;
  wym::lint::ScanStats stats;
  for (const fs::path& file : files) {
    std::string text;
    if (!ReadFile(file, &text)) {
      std::cerr << "wym-lint: cannot read " << file << "\n";
      return 2;
    }
    ++file_count;
    const std::string rel = RelativePath(file, root);
    for (const wym::lint::Finding& finding :
         wym::lint::ScanSource(rel, text, &stats)) {
      std::cout << wym::lint::FormatFinding(finding) << "\n";
      ++finding_count;
    }
  }

  if (finding_count > 0) {
    std::cout << "wym-lint: " << finding_count << " finding(s) in "
              << file_count << " file(s), " << stats.suppressions_honored
              << " suppression(s) honored\n";
    return 1;
  }
  std::cout << "wym-lint: clean (" << file_count << " files, "
            << stats.suppressions_honored << " suppressions honored)\n";
  return 0;
}
