// wym_lint: the project's static analyzer (see DESIGN.md "Correctness
// tooling" and "Static analysis v2").
//
//   wym_lint [lint] [<repo-root>]    token-level checks per file
//   wym_lint graph [<repo-root>]     include-graph layering + cycles
//   wym_lint taint [<repo-root>]     determinism taint (seeds -> sinks)
//   wym_lint lint --files <f> [f...] token checks on explicit files
//   wym_lint --list-checks           print the check catalog
//
// Every pass accepts `--format=text` (default) or `--format=json`
// (schema wym-analysis-report/v1, byte-identical across runs). The
// scanned tree is src/ tools/ tests/ bench/ examples/ under the root
// (default: the current directory). Exit codes are shared by all
// passes and are part of the CI contract:
//
//   0  clean
//   2  usage / IO error
//   5  unsuppressed findings
//   6  stale suppressions (a marker that excuses nothing)
//
// ctest runs all three passes over the full tree, so a banned pattern,
// an upward include or a nondeterministic serialization path fails the
// build gate, not a code review.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/findings.h"
#include "analysis/include_graph.h"
#include "analysis/source_model.h"
#include "analysis/taint.h"
#include "util/source_scan.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Forward-slashed path of `path` relative to `root` (or verbatim when it
// is not under root). Check scoping keys off this.
std::string RelativePath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  return (ec || rel.empty()) ? path.generic_string() : rel.generic_string();
}

int Usage() {
  std::cerr
      << "usage: wym_lint [lint|graph|taint] [<repo-root>]"
         " [--format=text|json]\n"
         "       wym_lint lint --files <file> [file...] [--format=...]\n"
         "       wym_lint --list-checks\n";
  return 2;
}

/// Collects the scan set under `root` in sorted order (directory
/// iteration order is filesystem-dependent; the output must not be).
std::vector<fs::path> CollectFiles(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path sub = root / dir;
    if (!fs::is_directory(sub)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Token lint over explicit (path, text) pairs.
wym::analysis::Report RunLintPass(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  wym::analysis::Report report;
  report.pass = "lint";
  wym::lint::ScanStats stats;
  for (const auto& [path, text] : sources) {
    ++report.files_scanned;
    std::vector<wym::lint::Finding> findings =
        wym::lint::ScanSource(path, text, &stats);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  report.suppressions_honored = stats.suppressions_honored;
  wym::analysis::SortFindings(&report.findings);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  if (!args.empty() && args[0] == "--list-checks") {
    for (const std::string& name : wym::lint::AllCheckNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  // Subcommand (defaults to lint so `wym_lint <root>` keeps working).
  std::string pass = "lint";
  if (!args.empty() &&
      (args[0] == "lint" || args[0] == "graph" || args[0] == "taint")) {
    pass = args[0];
    args.erase(args.begin());
  }

  bool json = false;
  bool explicit_files = false;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--format=json") {
      json = true;
    } else if (args[i] == "--format=text") {
      json = false;
    } else if (args[i] == "--files") {
      explicit_files = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "wym-lint: unknown option: " << args[i] << "\n";
      return Usage();
    } else {
      positional.push_back(args[i]);
    }
  }

  fs::path root = fs::current_path();
  std::vector<fs::path> files;
  if (explicit_files) {
    if (pass != "lint") {
      std::cerr << "wym-lint: --files is only supported by the lint pass"
                   " (graph/taint need the whole tree)\n";
      return Usage();
    }
    for (const std::string& arg : positional) files.emplace_back(arg);
    if (files.empty()) return Usage();
  } else {
    if (positional.size() > 1) return Usage();
    if (!positional.empty()) root = positional[0];
    if (!fs::is_directory(root)) {
      std::cerr << "wym-lint: not a directory: " << root << "\n";
      return 2;
    }
    files = CollectFiles(root);
  }

  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::string text;
    if (!ReadFile(file, &text)) {
      std::cerr << "wym-lint: cannot read " << file << "\n";
      return 2;
    }
    sources.emplace_back(RelativePath(file, root), std::move(text));
  }

  wym::analysis::Report report;
  if (pass == "lint") {
    report = RunLintPass(sources);
  } else {
    wym::analysis::SourceTree tree;
    for (auto& [path, text] : sources) tree.Add(path, text);
    report = pass == "graph" ? wym::analysis::RunGraphPass(tree)
                             : wym::analysis::RunTaintPass(tree);
  }

  std::cout << (json ? wym::analysis::RenderJson(report)
                     : wym::analysis::RenderText(report));
  return report.ExitCode();
}
